use std::fmt;

use serde::{Deserialize, Serialize};

/// An abstract GPU kernel dispatch: NDRange geometry plus a per-work-item
/// instruction mix and execution-quality hints.
///
/// Backends (the ACL / cuDNN / TVM planner models) lower a convolution into
/// one or more `KernelDesc`s; the [`crate::Engine`] turns them into cycles
/// and counters. The instruction mix is *scalar-equivalent*: `arith_per_item`
/// counts retired scalar float/integer operations per work-item, so total
/// executed instructions are directly comparable to the paper's Tables I–IV.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelDesc {
    name: String,
    global: [usize; 3],
    local: [usize; 3],
    arith_per_item: u64,
    mem_per_item: u64,
    bytes_per_mem: u32,
    coalescing: f64,
    cache_hit: f64,
    exec_efficiency: f64,
    footprint_bytes: u64,
    padded_accounting: bool,
}

impl KernelDesc {
    /// Starts building a kernel with the given name.
    pub fn builder(name: impl Into<String>) -> KernelBuilder {
        KernelBuilder::new(name)
    }

    /// Kernel name as a profiler would report it (e.g. `"gemm_mm"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Global NDRange extents.
    pub fn global(&self) -> [usize; 3] {
        self.global
    }

    /// Workgroup (local) extents.
    pub fn local(&self) -> [usize; 3] {
        self.local
    }

    /// Scalar arithmetic instructions per work-item.
    pub fn arith_per_item(&self) -> u64 {
        self.arith_per_item
    }

    /// Memory instructions per work-item.
    pub fn mem_per_item(&self) -> u64 {
        self.mem_per_item
    }

    /// Bytes touched per memory instruction.
    pub fn bytes_per_mem(&self) -> u32 {
        self.bytes_per_mem
    }

    /// Memory coalescing efficiency in `(0, 1]`.
    pub fn coalescing(&self) -> f64 {
        self.coalescing
    }

    /// Fraction of memory traffic served by cache in `[0, 1)`.
    pub fn cache_hit(&self) -> f64 {
        self.cache_hit
    }

    /// Issue efficiency in `(0, 1]` (workgroup-shape and schedule quality).
    pub fn exec_efficiency(&self) -> f64 {
        self.exec_efficiency
    }

    /// Device-memory footprint of the dispatch in bytes (buffers bound).
    pub fn footprint_bytes(&self) -> u64 {
        self.footprint_bytes
    }

    /// Whether padded edge lanes count toward the instruction totals (see
    /// [`KernelBuilder::padded_accounting`]).
    pub fn padded_accounting(&self) -> bool {
        self.padded_accounting
    }

    /// Workgroups per NDRange dimension (`ceil(global / local)`).
    pub fn workgroup_dims(&self) -> [usize; 3] {
        [
            self.global[0].div_ceil(self.local[0]),
            self.global[1].div_ceil(self.local[1]),
            self.global[2].div_ceil(self.local[2]),
        ]
    }

    /// Total workgroups in the dispatch.
    pub fn workgroup_count(&self) -> usize {
        self.workgroup_dims().iter().product()
    }

    /// Work-items per workgroup.
    pub fn workgroup_size(&self) -> usize {
        self.local.iter().product()
    }

    /// Total work-items occupying lanes (edge workgroups run padded — real
    /// GPUs issue inactive lanes too, so *timing* always uses this).
    pub fn executed_items(&self) -> u64 {
        self.workgroup_count() as u64 * self.workgroup_size() as u64
    }

    /// Work-items in the global NDRange (without workgroup padding).
    pub fn active_items(&self) -> u64 {
        self.global.iter().map(|&g| g as u64).product()
    }

    /// Items charged to the instruction counters: padded items when the
    /// padding performs real work (GEMM's padded matrix columns — this is
    /// how Tables II/III count 96 columns for 93 channels), active items
    /// when edge lanes are predicated off (direct convolution — Table V's
    /// ~1%-per-channel instruction growth).
    fn accounted_items(&self) -> u64 {
        if self.padded_accounting {
            self.executed_items()
        } else {
            self.active_items()
        }
    }

    /// Total scalar arithmetic instructions retired by the dispatch.
    pub fn total_arith(&self) -> u64 {
        self.accounted_items() * self.arith_per_item
    }

    /// Total memory instructions retired by the dispatch.
    pub fn total_mem(&self) -> u64 {
        self.accounted_items() * self.mem_per_item
    }

    /// `true` if `other` is indistinguishable from `self` to the engine's
    /// cost model: every field that feeds timing or energy agrees. The
    /// kernel `name` and `footprint_bytes` are deliberately excluded —
    /// they label and size the dispatch but never change its cost, which
    /// is what lets a sweep share one memo entry across identically-shaped
    /// kernels from different layers.
    pub fn cost_equivalent(&self, other: &KernelDesc) -> bool {
        self.global == other.global
            && self.local == other.local
            && self.arith_per_item == other.arith_per_item
            && self.mem_per_item == other.mem_per_item
            && self.bytes_per_mem == other.bytes_per_mem
            && self.coalescing.to_bits() == other.coalescing.to_bits()
            && self.cache_hit.to_bits() == other.cache_hit.to_bits()
            && self.exec_efficiency.to_bits() == other.exec_efficiency.to_bits()
            && self.padded_accounting == other.padded_accounting
    }

    /// 64-bit digest over exactly the fields [`Self::cost_equivalent`]
    /// compares (splitmix64 fold, float fields by raw bits). Equal digests
    /// are a fast necessary condition for cost equivalence; memo tables
    /// key on the digest and confirm with `cost_equivalent`.
    pub fn cost_digest(&self) -> u64 {
        fn splitmix64(mut z: u64) -> u64 {
            z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        let mut h = 0u64;
        for v in self.global {
            h = splitmix64(h ^ v as u64);
        }
        for v in self.local {
            h = splitmix64(h ^ v as u64);
        }
        h = splitmix64(h ^ self.arith_per_item);
        h = splitmix64(h ^ self.mem_per_item);
        h = splitmix64(h ^ u64::from(self.bytes_per_mem));
        h = splitmix64(h ^ self.coalescing.to_bits());
        h = splitmix64(h ^ self.cache_hit.to_bits());
        h = splitmix64(h ^ self.exec_efficiency.to_bits());
        h = splitmix64(h ^ u64::from(self.padded_accounting));
        h
    }
}

impl fmt::Display for KernelDesc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} global {:?} local {:?}",
            self.name, self.global, self.local
        )
    }
}

/// Builder for [`KernelDesc`] (many optional knobs, validated at `build`).
#[derive(Debug, Clone)]
pub struct KernelBuilder {
    name: String,
    global: [usize; 3],
    local: [usize; 3],
    arith_per_item: u64,
    mem_per_item: u64,
    bytes_per_mem: u32,
    coalescing: f64,
    cache_hit: f64,
    exec_efficiency: f64,
    footprint_bytes: u64,
    padded_accounting: bool,
}

impl KernelBuilder {
    fn new(name: impl Into<String>) -> Self {
        KernelBuilder {
            name: name.into(),
            global: [1, 1, 1],
            local: [1, 1, 1],
            arith_per_item: 0,
            mem_per_item: 0,
            bytes_per_mem: 4,
            coalescing: 1.0,
            cache_hit: 0.0,
            exec_efficiency: 1.0,
            footprint_bytes: 0,
            padded_accounting: true,
        }
    }

    /// Sets the global NDRange.
    pub fn global(mut self, global: [usize; 3]) -> Self {
        self.global = global;
        self
    }

    /// Sets the workgroup size.
    pub fn local(mut self, local: [usize; 3]) -> Self {
        self.local = local;
        self
    }

    /// Scalar arithmetic instructions per work-item.
    pub fn arith_per_item(mut self, n: u64) -> Self {
        self.arith_per_item = n;
        self
    }

    /// Memory instructions per work-item.
    pub fn mem_per_item(mut self, n: u64) -> Self {
        self.mem_per_item = n;
        self
    }

    /// Bytes per memory instruction (default 4).
    pub fn bytes_per_mem(mut self, n: u32) -> Self {
        self.bytes_per_mem = n;
        self
    }

    /// Coalescing efficiency (default 1.0).
    pub fn coalescing(mut self, c: f64) -> Self {
        self.coalescing = c;
        self
    }

    /// Cache hit fraction (default 0.0).
    pub fn cache_hit(mut self, h: f64) -> Self {
        self.cache_hit = h;
        self
    }

    /// Issue efficiency (default 1.0).
    pub fn exec_efficiency(mut self, e: f64) -> Self {
        self.exec_efficiency = e;
        self
    }

    /// Device-memory footprint in bytes.
    pub fn footprint_bytes(mut self, b: u64) -> Self {
        self.footprint_bytes = b;
        self
    }

    /// Whether padded edge lanes count toward instruction totals
    /// (default `true`; set `false` for kernels that predicate them off).
    pub fn padded_accounting(mut self, padded: bool) -> Self {
        self.padded_accounting = padded;
        self
    }

    /// Finishes the kernel description.
    ///
    /// # Panics
    ///
    /// Panics if any NDRange/local extent is zero, or an efficiency knob is
    /// outside its documented range — kernels are produced by backend code,
    /// so a bad value is a programming error, not user input.
    pub fn build(self) -> KernelDesc {
        // lint: allow(panic) — documented # Panics contract: backend-produced knob ranges
        assert!(
            self.global.iter().all(|&g| g > 0) && self.local.iter().all(|&l| l > 0),
            "kernel {} has a zero NDRange extent",
            self.name
        );
        // lint: allow(panic) — documented # Panics contract: backend-produced knob ranges
        assert!(
            self.coalescing > 0.0 && self.coalescing <= 1.0,
            "kernel {}: coalescing must be in (0, 1]",
            self.name
        );
        // lint: allow(panic) — documented # Panics contract: backend-produced knob ranges
        assert!(
            (0.0..1.0).contains(&self.cache_hit),
            "kernel {}: cache_hit must be in [0, 1)",
            self.name
        );
        // lint: allow(panic) — documented # Panics contract: backend-produced knob ranges
        assert!(
            self.exec_efficiency > 0.0 && self.exec_efficiency <= 1.0,
            "kernel {}: exec_efficiency must be in (0, 1]",
            self.name
        );
        KernelDesc {
            name: self.name,
            global: self.global,
            local: self.local,
            arith_per_item: self.arith_per_item,
            mem_per_item: self.mem_per_item,
            bytes_per_mem: self.bytes_per_mem,
            coalescing: self.coalescing,
            cache_hit: self.cache_hit,
            exec_efficiency: self.exec_efficiency,
            footprint_bytes: self.footprint_bytes,
            padded_accounting: self.padded_accounting,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k() -> KernelDesc {
        KernelDesc::builder("gemm_mm")
            .global([784, 24, 1])
            .local([4, 4, 1])
            .arith_per_item(100)
            .mem_per_item(10)
            .build()
    }

    #[test]
    fn workgroup_geometry() {
        let k = k();
        assert_eq!(k.workgroup_dims(), [196, 6, 1]);
        assert_eq!(k.workgroup_count(), 1176);
        assert_eq!(k.workgroup_size(), 16);
        assert_eq!(k.executed_items(), 1176 * 16);
    }

    #[test]
    fn partial_workgroups_round_up() {
        let k = KernelDesc::builder("edge")
            .global([10, 1, 1])
            .local([4, 1, 1])
            .arith_per_item(1)
            .build();
        // 10 items in workgroups of 4 -> 3 workgroups, 12 executed items.
        assert_eq!(k.workgroup_count(), 3);
        assert_eq!(k.executed_items(), 12);
        assert_eq!(k.total_arith(), 12);
    }

    #[test]
    fn instruction_totals_scale_with_items() {
        let k = k();
        assert_eq!(k.total_arith(), k.executed_items() * 100);
        assert_eq!(k.total_mem(), k.executed_items() * 10);
    }

    #[test]
    #[should_panic(expected = "zero NDRange extent")]
    fn zero_extent_rejected() {
        let _ = KernelDesc::builder("bad").global([0, 1, 1]).build();
    }

    #[test]
    #[should_panic(expected = "coalescing")]
    fn coalescing_range_enforced() {
        let _ = KernelDesc::builder("bad").coalescing(1.5).build();
    }

    #[test]
    #[should_panic(expected = "exec_efficiency")]
    fn efficiency_range_enforced() {
        let _ = KernelDesc::builder("bad").exec_efficiency(0.0).build();
    }

    #[test]
    fn display_names_the_kernel() {
        assert!(k().to_string().starts_with("gemm_mm"));
    }

    #[test]
    fn cost_equivalence_ignores_name_and_footprint() {
        let a = KernelDesc::builder("gemm_mm")
            .global([784, 24, 1])
            .local([4, 4, 1])
            .arith_per_item(100)
            .mem_per_item(10)
            .footprint_bytes(1 << 20)
            .build();
        let b = KernelDesc::builder("gemm_mm_interleaved")
            .global([784, 24, 1])
            .local([4, 4, 1])
            .arith_per_item(100)
            .mem_per_item(10)
            .footprint_bytes(1 << 24)
            .build();
        assert!(a.cost_equivalent(&b));
        assert_eq!(a.cost_digest(), b.cost_digest());
    }

    #[test]
    fn cost_digest_separates_cost_relevant_fields() {
        let base = k();
        let variants = [
            KernelDesc::builder("gemm_mm")
                .global([784, 25, 1])
                .local([4, 4, 1])
                .arith_per_item(100)
                .mem_per_item(10)
                .build(),
            KernelDesc::builder("gemm_mm")
                .global([784, 24, 1])
                .local([8, 4, 1])
                .arith_per_item(100)
                .mem_per_item(10)
                .build(),
            KernelDesc::builder("gemm_mm")
                .global([784, 24, 1])
                .local([4, 4, 1])
                .arith_per_item(101)
                .mem_per_item(10)
                .build(),
            KernelDesc::builder("gemm_mm")
                .global([784, 24, 1])
                .local([4, 4, 1])
                .arith_per_item(100)
                .mem_per_item(10)
                .cache_hit(0.5)
                .build(),
            KernelDesc::builder("gemm_mm")
                .global([784, 24, 1])
                .local([4, 4, 1])
                .arith_per_item(100)
                .mem_per_item(10)
                .padded_accounting(false)
                .build(),
        ];
        for v in &variants {
            assert!(!base.cost_equivalent(v), "{v}");
            assert_ne!(base.cost_digest(), v.cost_digest(), "{v}");
        }
    }

    #[test]
    fn defaults_are_neutral() {
        let k = KernelDesc::builder("n").build();
        assert_eq!(k.coalescing(), 1.0);
        assert_eq!(k.cache_hit(), 0.0);
        assert_eq!(k.exec_efficiency(), 1.0);
        assert_eq!(k.bytes_per_mem(), 4);
        assert_eq!(k.executed_items(), 1);
    }
}

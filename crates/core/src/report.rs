//! Markdown reports for a pruning campaign — the artifact a practitioner
//! would attach to a deployment decision: device, per-layer staircase
//! summaries, the selected plan, and the uninstructed-baseline comparison.

use std::fmt::Write as _;

use pruneperf_backends::ConvBackend;
use pruneperf_models::Network;
use pruneperf_profiler::LayerProfiler;

use crate::accuracy::AccuracyModel;
use crate::{PerfAwarePruner, Staircase, UninstructedPruner};

/// Options for [`campaign_report`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReportOptions {
    /// Latency budget as a fraction of the unpruned latency.
    pub budget_fraction: f64,
    /// Uninstructed-baseline pruning distance to compare against.
    pub baseline_distance: usize,
}

impl Default for ReportOptions {
    fn default() -> Self {
        ReportOptions {
            budget_fraction: 0.8,
            baseline_distance: 7,
        }
    }
}

/// Runs a full performance-aware pruning campaign and renders a markdown
/// report: staircase summary per layer, the chosen plan, and the
/// uninstructed baseline it beats.
pub fn campaign_report(
    profiler: &LayerProfiler,
    accuracy: &AccuracyModel,
    backend: &dyn ConvBackend,
    network: &Network,
    options: ReportOptions,
) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Pruning campaign: {} with {} on {}\n",
        network.name(),
        backend.name(),
        profiler.device().name()
    );

    // Per-layer staircase summary.
    let _ = writeln!(out, "## Layer staircases\n");
    let _ = writeln!(
        out,
        "| layer | channels | steps | optimal points | worst adjacent jump |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|");
    for layer in network.layers() {
        let curve = profiler.latency_curve(backend, layer, 1..=layer.c_out());
        let staircase = Staircase::detect(&curve);
        let jump = curve
            .max_adjacent_ratio()
            .map(|(a, b, r)| format!("{r:.2}x at {a}->{b}"))
            .unwrap_or_else(|| "-".into());
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | {} |",
            layer.label(),
            layer.c_out(),
            staircase.steps().len(),
            staircase.optimal_points().len(),
            jump
        );
    }

    // Plans.
    let pruner = PerfAwarePruner::new(profiler, accuracy);
    let plan = pruner.prune_to_latency(backend, network, options.budget_fraction);
    let baseline = UninstructedPruner::new(profiler, accuracy);
    let full = baseline.prune_by_distance(backend, network, 0);
    let naive = baseline.prune_by_distance(backend, network, options.baseline_distance);

    let _ = writeln!(out, "\n## Plans\n");
    let _ = writeln!(out, "| policy | latency (ms) | energy (mJ) | accuracy |");
    let _ = writeln!(out, "|---|---|---|---|");
    for (name, p) in [
        ("unpruned", &full),
        ("uninstructed (distance {d})", &naive),
        ("performance-aware", &plan),
    ] {
        let name = name.replace("{d}", &options.baseline_distance.to_string());
        let _ = writeln!(
            out,
            "| {name} | {:.2} | {:.2} | {:.4} |",
            p.latency_ms(),
            p.energy_mj(),
            p.accuracy()
        );
    }

    // Per-layer decisions of the chosen plan.
    let _ = writeln!(out, "\n## Selected channel counts\n");
    let _ = writeln!(out, "| layer | original | kept |");
    let _ = writeln!(out, "|---|---|---|");
    for layer in network.layers() {
        let kept = plan.kept_for(layer.label()).unwrap_or(layer.c_out());
        if kept != layer.c_out() {
            let _ = writeln!(out, "| {} | {} | {} |", layer.label(), layer.c_out(), kept);
        }
    }

    // Verdict.
    let _ = writeln!(out, "\n## Verdict\n");
    if naive.latency_ms() > full.latency_ms() {
        let _ = writeln!(
            out,
            "Uninstructed pruning at distance {} is **{:.2}x slower than not pruning at all** — \
             the paper's central warning. The performance-aware plan reaches {:.2}x of the \
             unpruned latency at accuracy {:.4}.",
            options.baseline_distance,
            naive.latency_ms() / full.latency_ms(),
            plan.latency_ms() / full.latency_ms(),
            plan.accuracy()
        );
    } else {
        let _ = writeln!(
            out,
            "The performance-aware plan reaches {:.2}x of the unpruned latency at accuracy {:.4} \
             (uninstructed distance-{} lands at {:.2}x, accuracy {:.4}).",
            plan.latency_ms() / full.latency_ms(),
            plan.accuracy(),
            options.baseline_distance,
            naive.latency_ms() / full.latency_ms(),
            naive.accuracy()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pruneperf_backends::Cudnn;
    use pruneperf_gpusim::Device;
    use pruneperf_models::alexnet;

    #[test]
    fn report_contains_all_sections() {
        let device = Device::jetson_tx2();
        let profiler = LayerProfiler::noiseless(&device);
        let net = alexnet();
        let acc = AccuracyModel::for_network(&net);
        let report = campaign_report(
            &profiler,
            &acc,
            &Cudnn::new(),
            &net,
            ReportOptions::default(),
        );
        for heading in [
            "# Pruning campaign",
            "## Layer staircases",
            "## Plans",
            "## Selected channel counts",
            "## Verdict",
        ] {
            assert!(report.contains(heading), "missing {heading}\n{report}");
        }
        // One staircase row per layer.
        for layer in net.layers() {
            assert!(report.contains(layer.label()), "{}", layer.label());
        }
        assert!(report.contains("performance-aware"));
    }

    #[test]
    fn default_options_are_papers_scenario() {
        let o = ReportOptions::default();
        assert_eq!(o.baseline_distance, 7); // ~12% of a 64-channel layer
        assert!((o.budget_fraction - 0.8).abs() < 1e-12);
    }
}

use std::fmt;

use serde::{Deserialize, Serialize};

use pruneperf_profiler::{LatencyCurve, PartialCurve};

/// Relative tolerance when grouping points into a step and when deciding
/// Pareto dominance — sized to ride over the profiler's ~2% jitter.
const LEVEL_TOL: f64 = 0.05;

/// Absolute floor added to the step tolerance, ms. A purely relative
/// tolerance breaks down near zero: at a 0 ms level `(ms - mean) / mean`
/// is `NaN` (every comparison fails, so each point becomes its own step)
/// and at a near-zero level the tolerance band collapses below float
/// noise. One picosecond is far under any modelled kernel time yet keeps
/// flat ~0 ms curves detecting as the single step they are.
const LEVEL_TOL_ABS_MS: f64 = 1e-9;

/// Relative slack when comparing a level against a latency budget. A
/// budget that lands *exactly* on a level — e.g. a level computed as
/// `0.1 + 0.2` against a budget written as `0.3` — must deterministically
/// include that step; one part in 10^12 covers accumulated rounding
/// while staying far below measurement resolution.
const BUDGET_REL_TOL: f64 = 1e-12;

/// One flat segment of the latency staircase.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Step {
    /// First channel count of the step (inclusive).
    pub from_channels: usize,
    /// Last channel count of the step (inclusive).
    pub to_channels: usize,
    /// Mean latency of the step's points in ms.
    pub level_ms: f64,
}

impl Step {
    /// Number of channel counts on the step.
    pub fn width(&self) -> usize {
        self.to_channels - self.from_channels + 1
    }
}

/// A channel count worth pruning to: no larger profiled count runs at the
/// same (or lower) latency.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OptimalPoint {
    /// The channel count.
    pub channels: usize,
    /// Median latency at that count, ms.
    pub ms: f64,
}

/// Staircase analysis of a latency curve (§II-B).
///
/// Two views of the same data:
///
/// * [`Staircase::steps`] — consecutive points grouped into flat levels
///   (the visual staircase of Figs 2, 4, 5);
/// * [`Staircase::optimal_points`] — the *right edges*: channel counts `c`
///   such that no `c' > c` is as fast (within tolerance). For simple
///   staircases these are literally the right end of each step; for ACL's
///   two parallel staircases (Fig 14) they are the right edges of the fast
///   staircase's steps only, which is exactly the set a performance-aware
///   pruner should target.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Staircase {
    steps: Vec<Step>,
    optimal: Vec<OptimalPoint>,
}

impl Staircase {
    /// Analyzes a profiled curve.
    pub fn detect(curve: &LatencyCurve) -> Self {
        Staircase {
            steps: detect_steps(curve),
            optimal: detect_optimal(curve),
        }
    }

    /// Analyzes the surviving points of a fault-degraded sweep.
    ///
    /// Returns `None` when the partial curve has no measured points at all
    /// (every configuration faulted) — there is nothing to analyze, and
    /// [`Staircase::detect`] can never see that case because a
    /// [`LatencyCurve`] is non-empty by construction. Gapped channel
    /// counts simply never appear as steps edges or pruning candidates.
    pub fn detect_partial(partial: &PartialCurve) -> Option<Self> {
        partial.curve().map(Self::detect)
    }

    /// The flat segments in increasing channel order.
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// Pruning candidates: right edges of the latency-Pareto front, in
    /// increasing channel order.
    pub fn optimal_points(&self) -> &[OptimalPoint] {
        &self.optimal
    }

    /// The optimal point with the most channels that still meets a latency
    /// budget — the “best trade-off between accuracy and inference time”
    /// pick of §IV-A1.
    ///
    /// The comparison allows [`BUDGET_REL_TOL`] relative slack, so a
    /// budget equal to a step's level selects that step even when the two
    /// values were computed along different float paths.
    pub fn best_within_budget(&self, budget_ms: f64) -> Option<OptimalPoint> {
        let limit = budget_ms + budget_ms.abs() * BUDGET_REL_TOL;
        self.optimal.iter().rev().find(|p| p.ms <= limit).copied()
    }

    /// Largest ratio between adjacent steps' levels (the “uneven gaps”
    /// observation on Fig 5).
    pub fn max_step_gap(&self) -> Option<f64> {
        self.steps
            .windows(2)
            .map(|w| {
                let (a, b) = (w[0].level_ms, w[1].level_ms);
                if a > b {
                    a / b
                } else {
                    b / a
                }
            })
            .max_by(f64::total_cmp)
    }
}

impl fmt::Display for Staircase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} step(s), {} optimal point(s)",
            self.steps.len(),
            self.optimal.len()
        )?;
        for s in &self.steps {
            writeln!(
                f,
                "  [{:>4}..{:>4}] {:>9.3} ms",
                s.from_channels, s.to_channels, s.level_ms
            )?;
        }
        Ok(())
    }
}

/// Groups consecutive points whose latency stays within `LEVEL_TOL` of the
/// running step mean.
fn detect_steps(curve: &LatencyCurve) -> Vec<Step> {
    let mut steps: Vec<Step> = Vec::new();
    let mut members: Vec<f64> = Vec::new();
    let mut from = 0usize;
    let mut prev_c = 0usize;
    for p in curve.points() {
        let ms = p.measurement.median_ms();
        if members.is_empty() {
            members.push(ms);
            from = p.channels;
            prev_c = p.channels;
            continue;
        }
        let mean: f64 = members.iter().sum::<f64>() / members.len() as f64;
        // Relative band with an absolute floor: dividing by the mean would
        // produce NaN on a 0 ms level and fragment near-zero curves.
        let tol = LEVEL_TOL * mean.abs() + LEVEL_TOL_ABS_MS;
        if (ms - mean).abs() <= tol {
            members.push(ms);
            prev_c = p.channels;
        } else {
            steps.push(Step {
                from_channels: from,
                to_channels: prev_c,
                level_ms: mean,
            });
            members.clear();
            members.push(ms);
            from = p.channels;
            prev_c = p.channels;
        }
    }
    if !members.is_empty() {
        steps.push(Step {
            from_channels: from,
            to_channels: prev_c,
            level_ms: members.iter().sum::<f64>() / members.len() as f64,
        });
    }
    steps
}

/// Right edges of the latency-Pareto front: `c` is optimal when every
/// profiled `c' > c` is slower than `t(c) * (1 + LEVEL_TOL)`.
fn detect_optimal(curve: &LatencyCurve) -> Vec<OptimalPoint> {
    let series = curve.series();
    let mut optimal = Vec::new();
    let mut best_suffix_ms = f64::INFINITY;
    for &(c, ms) in series.iter().rev() {
        if ms * (1.0 + LEVEL_TOL) < best_suffix_ms {
            optimal.push(OptimalPoint { channels: c, ms });
            best_suffix_ms = ms;
        }
    }
    optimal.reverse();
    optimal
}

#[cfg(test)]
mod tests {
    use super::*;
    use pruneperf_profiler::{CurvePoint, Measurement};

    fn curve_from(series: &[(usize, f64)]) -> LatencyCurve {
        LatencyCurve::new(
            "test",
            "test",
            "test",
            series
                .iter()
                .map(|&(c, ms)| CurvePoint {
                    channels: c,
                    measurement: Measurement::from_runs(vec![ms]),
                })
                .collect(),
        )
    }

    /// A clean cuDNN-style staircase: three flat levels.
    fn cudnn_style() -> LatencyCurve {
        let mut series = Vec::new();
        for c in 1..=96usize {
            let ms = match c {
                1..=32 => 3.0,
                33..=64 => 5.0,
                _ => 8.0,
            };
            series.push((c, ms));
        }
        curve_from(&series)
    }

    /// ACL-style two parallel staircases: alternating 4-groups.
    fn acl_style() -> LatencyCurve {
        let series: Vec<(usize, f64)> = (1..=64usize)
            .map(|c| {
                let c4 = c.div_ceil(4) * 4;
                let base = 4.0 + (c4.div_ceil(16) as f64) * 2.0; // fast staircase
                let ms = if c4 % 8 == 0 { base } else { base + 6.0 };
                (c, ms)
            })
            .collect();
        curve_from(&series)
    }

    #[test]
    fn detects_three_flat_steps() {
        let s = Staircase::detect(&cudnn_style());
        assert_eq!(s.steps().len(), 3);
        assert_eq!(s.steps()[0].from_channels, 1);
        assert_eq!(s.steps()[0].to_channels, 32);
        assert_eq!(s.steps()[2].to_channels, 96);
        assert!((s.steps()[1].level_ms - 5.0).abs() < 1e-9);
    }

    #[test]
    fn optimal_points_are_right_edges() {
        let s = Staircase::detect(&cudnn_style());
        let channels: Vec<usize> = s.optimal_points().iter().map(|p| p.channels).collect();
        assert_eq!(channels, [32, 64, 96]);
    }

    #[test]
    fn parallel_staircases_keep_only_fast_edges() {
        let s = Staircase::detect(&acl_style());
        // Optimal points must all sit on the fast staircase (c4 % 8 == 0).
        for p in s.optimal_points() {
            let c4 = p.channels.div_ceil(4) * 4;
            assert_eq!(c4 % 8, 0, "point {} is on the slow staircase", p.channels);
        }
        // The largest profiled fast count is optimal.
        assert_eq!(s.optimal_points().last().unwrap().channels, 64);
    }

    #[test]
    fn budget_selection_picks_most_channels() {
        let s = Staircase::detect(&cudnn_style());
        assert_eq!(s.best_within_budget(5.5).unwrap().channels, 64);
        assert_eq!(s.best_within_budget(100.0).unwrap().channels, 96);
        assert!(s.best_within_budget(1.0).is_none());
    }

    #[test]
    fn max_step_gap_reports_uneven_stairs() {
        let s = Staircase::detect(&cudnn_style());
        // 5/3 vs 8/5: max gap is 5/3.
        assert!((s.max_step_gap().unwrap() - 5.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn tolerates_measurement_jitter() {
        // 2% jitter on a two-level staircase must not fragment the steps.
        let series: Vec<(usize, f64)> = (1..=40usize)
            .map(|c| {
                let base = if c <= 20 { 4.0 } else { 7.0 };
                let wiggle = 1.0 + 0.02 * if c % 2 == 0 { 1.0 } else { -1.0 };
                (c, base * wiggle)
            })
            .collect();
        let s = Staircase::detect(&curve_from(&series));
        assert_eq!(s.steps().len(), 2, "{s}");
    }

    #[test]
    fn single_point_curve() {
        let s = Staircase::detect(&curve_from(&[(64, 5.0)]));
        assert_eq!(s.steps().len(), 1);
        assert_eq!(s.optimal_points().len(), 1);
        assert_eq!(s.max_step_gap(), None);
    }

    #[test]
    fn monotone_noise_free_curve_is_all_optimal() {
        // Strictly increasing latency: every point is a right edge.
        let series: Vec<(usize, f64)> = (1..=10).map(|c| (c, c as f64 * 10.0)).collect();
        let s = Staircase::detect(&curve_from(&series));
        assert_eq!(s.optimal_points().len(), 10);
    }

    #[test]
    fn display_renders_steps() {
        let out = Staircase::detect(&cudnn_style()).to_string();
        assert!(out.contains("3 step(s)"), "{out}");
    }

    /// Regression: a flat level at (or within float noise of) 0 ms used to
    /// divide by a zero mean, turn the tolerance test into a NaN
    /// comparison, and fragment the curve into one step per point.
    #[test]
    fn near_zero_flat_curve_is_one_step() {
        let zero: Vec<(usize, f64)> = (1..=16).map(|c| (c, 0.0)).collect();
        let s = Staircase::detect(&curve_from(&zero));
        assert_eq!(s.steps().len(), 1, "{s}");
        assert_eq!(s.steps()[0].level_ms, 0.0);
        assert!(s.steps()[0].level_ms.is_finite());

        // Sub-float-noise levels (e.g. 1e-14 ms) group the same way.
        let tiny: Vec<(usize, f64)> = (1..=16)
            .map(|c| (c, 1e-14 * if c % 2 == 0 { 1.0 } else { 3.0 }))
            .collect();
        let s = Staircase::detect(&curve_from(&tiny));
        assert_eq!(s.steps().len(), 1, "{s}");
        // A genuine step above the absolute floor still separates.
        let mixed: Vec<(usize, f64)> = (1..=16)
            .map(|c| (c, if c <= 8 { 0.0 } else { 4.0 }))
            .collect();
        let s = Staircase::detect(&curve_from(&mixed));
        assert_eq!(s.steps().len(), 2, "{s}");
    }

    /// Regression: a budget landing exactly on a level must include that
    /// step even when budget and level were computed along different float
    /// paths (`0.1 + 0.2 != 0.3` in binary).
    #[test]
    fn budget_exactly_on_a_level_includes_the_step() {
        let level = 0.1_f64 + 0.2_f64; // 0.30000000000000004
        let series: Vec<(usize, f64)> = (1..=8)
            .map(|c| (c, if c <= 4 { level } else { level * 3.0 }))
            .collect();
        let s = Staircase::detect(&curve_from(&series));
        // The literal 0.3 sits one ULP *below* the computed level; the
        // tolerance must bridge it deterministically.
        assert_eq!(s.best_within_budget(0.3).unwrap().channels, 4);
        // Exact equality on the same float path also selects the step.
        assert_eq!(s.best_within_budget(level).unwrap().channels, 4);
        // A budget genuinely below the level still excludes it.
        assert!(s.best_within_budget(level * 0.99).is_none());
    }

    /// Satellite (PR 5): an empty partial curve — every configuration
    /// faulted — detects as `None` rather than panicking or inventing an
    /// empty staircase.
    #[test]
    fn empty_partial_curve_detects_as_none() {
        use pruneperf_profiler::{CurveGap, PartialCurve};
        let gaps = vec![CurveGap {
            channels: 64,
            attempts: 4,
            error: "permanent fault".into(),
        }];
        let partial = PartialCurve::new(None, gaps);
        assert!(Staircase::detect_partial(&partial).is_none());
        // Degenerate but legal: no curve and no gaps either.
        assert!(Staircase::detect_partial(&PartialCurve::new(None, Vec::new())).is_none());
    }

    /// Satellite (PR 5): a single surviving point is one step and one
    /// optimal point through the partial path too.
    #[test]
    fn single_point_partial_curve_detects() {
        use pruneperf_profiler::PartialCurve;
        let partial = PartialCurve::new(Some(curve_from(&[(48, 6.5)])), Vec::new());
        let s = Staircase::detect_partial(&partial).expect("one point is a curve");
        assert_eq!(s.steps().len(), 1);
        assert_eq!(s.steps()[0].width(), 1);
        assert_eq!(s.optimal_points().len(), 1);
        assert_eq!(s.optimal_points()[0].channels, 48);
    }

    /// Satellite (PR 5): an all-equal curve is a single step whose only
    /// pruning candidate is the largest channel count — pruning buys
    /// nothing on a flat level, and the detector must say so.
    #[test]
    fn all_equal_levels_are_one_step_with_one_candidate() {
        let flat: Vec<(usize, f64)> = (1..=64).map(|c| (c, 2.75)).collect();
        let s = Staircase::detect(&curve_from(&flat));
        assert_eq!(s.steps().len(), 1, "{s}");
        assert_eq!(s.steps()[0].from_channels, 1);
        assert_eq!(s.steps()[0].to_channels, 64);
        assert!((s.steps()[0].level_ms - 2.75).abs() < 1e-12);
        let channels: Vec<usize> = s.optimal_points().iter().map(|p| p.channels).collect();
        assert_eq!(channels, [64], "only the right edge is optimal");
        assert_eq!(s.max_step_gap(), None);
    }

    /// Satellite (PR 5): a one-gap `PartialCurve` detects over the
    /// survivors, and the gapped count never shows up in any step or
    /// candidate.
    #[test]
    fn one_gap_partial_curve_detects_over_survivors() {
        use pruneperf_profiler::{CurveGap, PartialCurve};
        let series: Vec<(usize, f64)> = (1..=32usize)
            .filter(|&c| c != 16)
            .map(|c| (c, if c <= 20 { 3.0 } else { 6.0 }))
            .collect();
        let gaps = vec![CurveGap {
            channels: 16,
            attempts: 4,
            error: "transient faults exhausted the retry budget".into(),
        }];
        let partial = PartialCurve::new(Some(curve_from(&series)), gaps);
        assert!(!partial.is_complete());
        let s = Staircase::detect_partial(&partial).expect("survivors form a curve");
        assert_eq!(s.steps().len(), 2, "{s}");
        for step in s.steps() {
            assert!(!(step.from_channels..=step.to_channels).is_empty());
        }
        let channels: Vec<usize> = s.optimal_points().iter().map(|p| p.channels).collect();
        assert_eq!(channels, [20, 32]);
        assert!(!channels.contains(&16), "the gap is not a candidate");
    }

    /// Curves with gaps (fault-injected sweeps drop unmeasurable channel
    /// counts) keep detecting: steps span the surviving points, and the
    /// missing counts simply never appear as candidates.
    #[test]
    fn gapped_curve_detects_over_survivors() {
        let series: Vec<(usize, f64)> = (1..=40usize)
            .filter(|c| ![7, 8, 21, 30].contains(c))
            .map(|c| (c, if c <= 20 { 4.0 } else { 7.0 }))
            .collect();
        let s = Staircase::detect(&curve_from(&series));
        assert_eq!(s.steps().len(), 2, "{s}");
        assert_eq!(s.steps()[0].from_channels, 1);
        assert_eq!(s.steps()[0].to_channels, 20);
        assert_eq!(s.steps()[1].from_channels, 22, "21 is a gap");
        let channels: Vec<usize> = s.optimal_points().iter().map(|p| p.channels).collect();
        assert_eq!(channels, [20, 40]);
    }
}

//! Cross-library comparison — the §V discussion as an API:
//! “no optimal library exists to outperform across all neural network
//! layers. Neither Arm Compute Library, nor TVM dominates … Future
//! solutions integrating optimizations from across different deep learning
//! libraries could adapt their computation based on network and layer
//! configuration.”

use std::fmt;

use pruneperf_backends::ConvBackend;
use pruneperf_models::Network;
use pruneperf_profiler::LayerProfiler;
use serde::{Deserialize, Serialize};

/// Per-layer outcome of a backend comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShootoutRow {
    /// Layer label.
    pub label: String,
    /// Median latency per backend, ms (indexed like the backend list).
    pub ms: Vec<f64>,
    /// Index of the fastest backend.
    pub winner: usize,
}

/// A backends × layers latency comparison on one device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Shootout {
    device: String,
    backend_names: Vec<String>,
    rows: Vec<ShootoutRow>,
}

impl Shootout {
    /// Measures every backend on every layer of `network`.
    ///
    /// # Panics
    ///
    /// Panics if `backends` is empty — a comparison needs contestants.
    pub fn run(
        profiler: &LayerProfiler,
        backends: &[Box<dyn ConvBackend>],
        network: &Network,
    ) -> Self {
        assert!(!backends.is_empty(), "shootout needs at least one backend");
        let rows = network
            .layers()
            .iter()
            .map(|layer| {
                let ms: Vec<f64> = backends
                    .iter()
                    .map(|b| profiler.measure(b.as_ref(), layer).median_ms())
                    .collect();
                let winner = ms
                    .iter()
                    .enumerate()
                    .min_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(i, _)| i)
                    // lint: allow(unwrap) — `run` asserts backends is non-empty
                    .expect("at least one backend");
                ShootoutRow {
                    label: layer.label().to_string(),
                    ms,
                    winner,
                }
            })
            .collect();
        Shootout {
            device: profiler.device().name().to_string(),
            backend_names: backends.iter().map(|b| b.name().to_string()).collect(),
            rows,
        }
    }

    /// Backend names in column order.
    pub fn backend_names(&self) -> &[String] {
        &self.backend_names
    }

    /// Per-layer rows.
    pub fn rows(&self) -> &[ShootoutRow] {
        &self.rows
    }

    /// Fastest-layer wins per backend.
    pub fn wins(&self) -> Vec<usize> {
        let mut wins = vec![0usize; self.backend_names.len()];
        for r in &self.rows {
            wins[r.winner] += 1;
        }
        wins
    }

    /// `true` when one backend wins *every* layer (§V says this should not
    /// happen on the OpenCL stacks).
    pub fn has_dominant_backend(&self) -> bool {
        self.wins().contains(&self.rows.len())
    }

    /// The oracle latency: per layer, the fastest backend — the §V
    /// “integrating optimizations from across different libraries” bound.
    pub fn oracle_ms(&self) -> f64 {
        self.rows.iter().map(|r| r.ms[r.winner]).sum()
    }

    /// The best single-backend total latency and its index.
    ///
    /// # Panics
    ///
    /// Panics on a shootout with no backends (only constructible by
    /// deserializing a degenerate report; [`Shootout::run`] asserts).
    pub fn best_single_backend(&self) -> (usize, f64) {
        (0..self.backend_names.len())
            .map(|i| (i, self.rows.iter().map(|r| r.ms[i]).sum::<f64>()))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            // lint: allow(unwrap) — `run` asserts backends is non-empty
            .expect("at least one backend")
    }
}

impl fmt::Display for Shootout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "shootout on {}", self.device)?;
        write!(f, "{:<15}", "layer")?;
        for n in &self.backend_names {
            write!(f, "{n:>20}")?;
        }
        writeln!(f)?;
        for r in &self.rows {
            write!(f, "{:<15}", r.label)?;
            for (i, ms) in r.ms.iter().enumerate() {
                let mark = if i == r.winner { "*" } else { " " };
                write!(f, "{:>18.2}{mark} ", ms)?;
            }
            writeln!(f)?;
        }
        let wins = self.wins();
        write!(f, "{:<15}", "wins")?;
        for w in wins {
            write!(f, "{w:>20}")?;
        }
        writeln!(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pruneperf_backends::{AclDirect, AclDirectTuned, AclGemm, Tvm};
    use pruneperf_gpusim::Device;
    use pruneperf_models::{resnet50, vgg16};

    fn mali_backends() -> Vec<Box<dyn ConvBackend>> {
        vec![
            Box::new(AclDirect::new()),
            Box::new(AclGemm::new()),
            Box::new(Tvm::new()),
        ]
    }

    fn shootout() -> Shootout {
        let device = Device::mali_g72_hikey970();
        let profiler = LayerProfiler::noiseless(&device);
        Shootout::run(&profiler, &mali_backends(), &resnet50())
    }

    #[test]
    fn wins_sum_to_layer_count() {
        let s = shootout();
        assert_eq!(s.wins().iter().sum::<usize>(), resnet50().len());
        assert_eq!(s.rows().len(), 23);
    }

    /// §V: no single library dominates every ResNet-50 layer on Mali.
    #[test]
    fn no_dominant_backend_on_mali() {
        assert!(!shootout().has_dominant_backend());
    }

    /// The cross-library oracle beats the best single backend — the §V
    /// motivation for integrating optimizations across libraries.
    #[test]
    fn oracle_beats_best_single_backend() {
        let s = shootout();
        let (_, best_single) = s.best_single_backend();
        assert!(s.oracle_ms() < best_single);
        // And never beats it by violating per-row minima.
        for r in s.rows() {
            let min = r.ms.iter().cloned().fold(f64::INFINITY, f64::min);
            assert_eq!(min, r.ms[r.winner]);
        }
    }

    /// With the auto-tuner in the pool, direct conv wins more layers —
    /// “even with their auto-tuning enabled” neither dominates.
    #[test]
    fn autotuned_pool_still_has_no_dominator() {
        let device = Device::mali_g72_hikey970();
        let profiler = LayerProfiler::noiseless(&device);
        let backends: Vec<Box<dyn ConvBackend>> = vec![
            Box::new(AclDirectTuned::new()),
            Box::new(AclGemm::new()),
            Box::new(Tvm::new()),
        ];
        let s = Shootout::run(&profiler, &backends, &vgg16());
        assert!(!s.has_dominant_backend(), "{s}");
    }

    #[test]
    fn display_marks_winners() {
        let text = shootout().to_string();
        assert!(text.contains('*'), "{text}");
        assert!(text.contains("wins"), "{text}");
    }
}

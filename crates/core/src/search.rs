//! Exhaustive pruning-plan search for small networks.
//!
//! The §V loop uses a greedy trade (latency saved per accuracy lost), which
//! is fast but not provably optimal. For networks with few layers the
//! candidate space — the cross product of each layer's staircase optimal
//! points — is small enough to enumerate, giving (a) ground truth to
//! validate the greedy against and (b) an exact solver users can run on
//! sub-networks they care about.

use std::collections::HashMap;

use pruneperf_backends::ConvBackend;
use pruneperf_models::Network;
use pruneperf_profiler::LayerProfiler;

use crate::accuracy::AccuracyModel;
use crate::PerfAwarePruner;

/// An exhaustively-found pruning configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ExactPlan {
    /// Kept channels per layer label.
    pub kept: HashMap<String, usize>,
    /// Summed per-layer latency, ms.
    pub latency_ms: f64,
    /// Estimated accuracy.
    pub accuracy: f64,
}

/// Exhaustive search over the per-layer staircase candidates.
///
/// Returns the configuration with the **highest accuracy among those whose
/// latency is at most `budget_fraction` of the unpruned latency**, or
/// `None` when no candidate combination meets the budget.
///
/// # Panics
///
/// Panics if the candidate cross product exceeds `max_configs` — this is an
/// exact solver for *small* problems; use [`PerfAwarePruner`] otherwise.
pub fn exhaustive_prune_to_latency(
    profiler: &LayerProfiler,
    accuracy: &AccuracyModel,
    backend: &dyn ConvBackend,
    network: &Network,
    budget_fraction: f64,
    max_configs: usize,
) -> Option<ExactPlan> {
    // Candidate ladders: staircase optimal points plus the unpruned count.
    let pruner = PerfAwarePruner::new(profiler, accuracy);
    let mut ladders: Vec<(String, Vec<(usize, f64)>)> = Vec::new();
    for layer in network.layers() {
        let mut cands = pruner.candidates_for(backend, layer);
        let full_ms = profiler.measure(backend, layer).median_ms();
        if !cands.iter().any(|&(c, _)| c == layer.c_out()) {
            cands.push((layer.c_out(), full_ms));
        }
        ladders.push((layer.label().to_string(), cands));
    }
    let total_configs: usize = ladders.iter().map(|(_, c)| c.len()).product();
    assert!(
        total_configs <= max_configs,
        "{total_configs} configurations exceed the exhaustive-search cap {max_configs}"
    );

    let unpruned_ms: f64 = network
        .layers()
        .iter()
        .map(|l| profiler.measure(backend, l).median_ms())
        .sum();
    let budget = unpruned_ms * budget_fraction;

    // Iterate the cross product with an odometer.
    let mut indices = vec![0usize; ladders.len()];
    let mut best: Option<ExactPlan> = None;
    loop {
        let mut kept = HashMap::new();
        let mut latency = 0.0;
        for (slot, (label, cands)) in indices.iter().zip(&ladders) {
            let (c, ms) = cands[*slot];
            kept.insert(label.clone(), c);
            latency += ms;
        }
        if latency <= budget {
            let acc = accuracy.accuracy_with(&kept);
            if best.as_ref().is_none_or(|b| acc > b.accuracy) {
                best = Some(ExactPlan {
                    kept,
                    latency_ms: latency,
                    accuracy: acc,
                });
            }
        }
        // Advance the odometer.
        let mut i = 0;
        loop {
            if i == indices.len() {
                return best;
            }
            indices[i] += 1;
            if indices[i] < ladders[i].1.len() {
                break;
            }
            indices[i] = 0;
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pruneperf_backends::AclGemm;
    use pruneperf_gpusim::Device;
    use pruneperf_models::ConvLayerSpec;

    /// Mid-size layers so GPU work dominates fixed dispatch overhead and
    /// aggressive latency budgets are actually reachable.
    fn tiny_net() -> Network {
        Network::new(
            "Tiny",
            vec![
                ConvLayerSpec::new("T.L0", 3, 1, 1, 128, 128, 28, 28),
                ConvLayerSpec::new("T.L1", 1, 1, 0, 128, 256, 28, 28),
            ],
        )
    }

    fn setup(d: &Device) -> (LayerProfiler, AccuracyModel) {
        (
            LayerProfiler::noiseless(d),
            AccuracyModel::for_network(&tiny_net()),
        )
    }

    #[test]
    fn exact_plan_meets_budget_and_dominates_nothing_better() {
        let d = Device::mali_g72_hikey970();
        let (p, a) = setup(&d);
        let backend = AclGemm::new();
        let exact =
            exhaustive_prune_to_latency(&p, &a, &backend, &tiny_net(), 0.8, 10_000).unwrap();
        let unpruned: f64 = tiny_net()
            .layers()
            .iter()
            .map(|l| p.measure(&backend, l).median_ms())
            .sum();
        assert!(exact.latency_ms <= unpruned * 0.8 * 1.0001);
        assert!(exact.accuracy > 0.5);
    }

    /// The greedy §V loop stays close to the exhaustive optimum on a small
    /// network (the quality argument for using it at ResNet scale).
    #[test]
    fn greedy_is_near_optimal_on_small_networks() {
        let d = Device::mali_g72_hikey970();
        let (p, a) = setup(&d);
        let backend = AclGemm::new();
        let net = tiny_net();
        for budget in [0.9, 0.8, 0.7, 0.6] {
            let Some(exact) = exhaustive_prune_to_latency(&p, &a, &backend, &net, budget, 10_000)
            else {
                continue;
            };
            let greedy = PerfAwarePruner::new(&p, &a).prune_to_latency(&backend, &net, budget);
            // Greedy may spend slightly more accuracy but never more than
            // 2 absolute points on this scale.
            assert!(
                greedy.accuracy() >= exact.accuracy - 0.02,
                "budget {budget}: greedy {:.4} vs exact {:.4}",
                greedy.accuracy(),
                exact.accuracy
            );
            assert!(
                greedy.latency_ms() <= exact.latency_ms * 1.1 + 1e-9
                    || greedy.accuracy() >= exact.accuracy - 0.02
            );
        }
    }

    #[test]
    fn impossible_budget_returns_none() {
        let d = Device::mali_g72_hikey970();
        let (p, a) = setup(&d);
        let exact =
            exhaustive_prune_to_latency(&p, &a, &AclGemm::new(), &tiny_net(), 0.0001, 10_000);
        assert!(exact.is_none());
    }

    #[test]
    #[should_panic(expected = "exceed the exhaustive-search cap")]
    fn config_cap_is_enforced() {
        let d = Device::mali_g72_hikey970();
        let (p, a) = setup(&d);
        let _ = exhaustive_prune_to_latency(&p, &a, &AclGemm::new(), &tiny_net(), 0.8, 2);
    }
}

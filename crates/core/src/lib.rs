//! Performance-aware channel pruning — the contribution of Radu et al.
//! (IISWC 2019), built on the simulated devices, library planner models and
//! profilers of the sibling crates.
//!
//! The paper's proposal (§II-B, §V): channel pruning should not only ask
//! *how many channels can accuracy spare* but also *which channel counts
//! the library/hardware stack executes efficiently*. Inference time vs.
//! channel count is a staircase; “ideally, one should aim to choose the
//! number of channels of a convolutional layer such that it falls to the
//! right side of a performance step (more channels for the same execution
//! time budget)”, and some counts must be avoided outright because they
//! trigger pathological library decisions (up to 2× slower than the
//! *unpruned* layer).
//!
//! What lives here:
//!
//! * [`Staircase`] — step detection and optimal-point extraction from a
//!   profiled [`LatencyCurve`];
//! * [`analysis`] — the speedup/slowdown heatmaps of Figs 1, 6, 8–11, 13,
//!   16, 17, 19;
//! * [`accuracy`] — a deterministic accuracy surrogate standing in for the
//!   retraining loop (see `DESIGN.md` §2 for the substitution argument);
//! * [`PerfAwarePruner`] — the profiling-in-the-loop pruning algorithm,
//!   with [`UninstructedPruner`] as the accuracy-only baseline it beats;
//! * [`search`] — whole-network multi-objective search (exhaustive, beam,
//!   evolutionary) over the joint per-layer staircase candidates, with a
//!   [`search::ParetoArchive`] maintaining the 3-D non-dominated front.
//!
//! # Example
//!
//! ```
//! use pruneperf_backends::AclGemm;
//! use pruneperf_core::Staircase;
//! use pruneperf_gpusim::Device;
//! use pruneperf_models::resnet50;
//! use pruneperf_profiler::LayerProfiler;
//!
//! let device = Device::mali_g72_hikey970();
//! let layer = resnet50().layer("ResNet.L16").unwrap().clone();
//! let curve = LayerProfiler::new(&device).latency_curve(&AclGemm::new(), &layer, 1..=128);
//! let staircase = Staircase::detect(&curve);
//! // Pruning candidates sit on the right edges of the steps.
//! assert!(staircase.optimal_points().iter().any(|p| p.channels == 96));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accuracy;
pub mod analysis;
mod pareto;
mod pruner;
pub mod report;
pub mod search;
pub mod sensitivity;
pub mod shootout;
mod staircase;
pub mod testkit;

pub use pareto::pareto_front;
pub use pruner::{PerfAwarePruner, PruningPlan, UninstructedPruner};
pub use staircase::{OptimalPoint, Staircase, Step};

// Re-export the profiling vocabulary so `pruneperf-core` is usable alone.
pub use pruneperf_profiler::{LatencyCurve, LayerProfiler, Measurement};

/// Extracts the Pareto front of `(latency_ms, accuracy)` candidates:
/// members for which no other candidate is both faster-or-equal and
/// more-accurate-or-equal (with at least one strict). Ties are kept once.
///
/// The returned indices are sorted by increasing latency. Used by the
/// pruning loop to present the latency/accuracy trade-off of §V.
pub fn pareto_front(candidates: &[(f64, f64)]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..candidates.len()).collect();
    // Sort by latency ascending, accuracy descending for equal latency.
    order.sort_by(|&a, &b| {
        candidates[a]
            .0
            .total_cmp(&candidates[b].0)
            .then(candidates[b].1.total_cmp(&candidates[a].1))
    });
    let mut front = Vec::new();
    let mut best_acc = f64::NEG_INFINITY;
    let mut last_lat = f64::NEG_INFINITY;
    for i in order {
        let (lat, acc) = candidates[i];
        if acc > best_acc {
            // Drop duplicates at identical (lat, acc).
            if !(lat == last_lat && acc == best_acc) {
                front.push(i);
            }
            best_acc = acc;
            last_lat = lat;
        }
    }
    front
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominated_points_are_dropped() {
        // (latency, accuracy): candidate 1 dominates candidate 2.
        let cands = [(10.0, 0.7), (8.0, 0.75), (9.0, 0.72), (12.0, 0.8)];
        let front = pareto_front(&cands);
        assert_eq!(front, vec![1, 3]);
    }

    #[test]
    fn all_nondominated_kept_in_latency_order() {
        let cands = [(3.0, 0.5), (1.0, 0.3), (2.0, 0.4)];
        let front = pareto_front(&cands);
        assert_eq!(front, vec![1, 2, 0]);
    }

    #[test]
    fn empty_and_single() {
        assert!(pareto_front(&[]).is_empty());
        assert_eq!(pareto_front(&[(1.0, 1.0)]), vec![0]);
    }

    #[test]
    fn equal_latency_keeps_more_accurate() {
        let cands = [(5.0, 0.6), (5.0, 0.9)];
        let front = pareto_front(&cands);
        assert_eq!(front, vec![1]);
    }
}

//! A deterministic accuracy surrogate for the pruning loop.
//!
//! The paper prunes *without* retraining and notes that the latency effect
//! is identical either way (§II-B); accuracy enters only in the proposed
//! selection loop (§V), where profiled latency is coupled “with
//! convolutional inference accuracy of pruned layers to instruct the best
//! pruning level”. Reproducing an ImageNet training loop is out of scope
//! (see `DESIGN.md` §2), so this module supplies the accuracy *shape* that
//! loop needs: monotone in retained channels, saturating (late channels
//! matter less), heterogeneous across layers, and deterministic.
//!
//! The model: each layer's channels carry importances sampled from a seeded
//! lognormal-like distribution (derived from the synthetic weights' L1
//! norms, mirroring magnitude-based pruning criteria). Pruning removes the
//! *least* important channels first — the §II-B observation that latency
//! does not care which channel is removed means the latency side stays
//! sequential while accuracy assumes an ideal selection. Network accuracy
//! drops from its base by a weighted sum of the pruned importance mass.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use pruneperf_models::{weights, Network};

/// Accuracy surrogate for one network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccuracyModel {
    base_accuracy: f64,
    /// Per-layer, per-channel importance fractions, sorted ascending;
    /// prefix sums for O(1) pruned-mass queries.
    layer_prefix_mass: HashMap<String, Vec<f64>>,
    /// Per-layer weight of its importance mass in the network accuracy.
    layer_weight: HashMap<String, f64>,
    /// Accuracy lost if an entire *average* layer were removed.
    sensitivity: f64,
}

impl AccuracyModel {
    /// Builds the surrogate for a network.
    ///
    /// `base_accuracy` is the unpruned top-1 accuracy (e.g. 0.76 for
    /// ResNet-50); `sensitivity` scales how much accuracy a fully pruned
    /// layer would cost (default via [`AccuracyModel::for_network`]: 0.30).
    pub fn new(network: &Network, base_accuracy: f64, sensitivity: f64) -> Self {
        // lint: allow(panic) — documented precondition: base_accuracy is a fraction
        assert!(
            (0.0..=1.0).contains(&base_accuracy),
            "base accuracy must be a fraction"
        );
        let mut layer_prefix_mass = HashMap::with_capacity(network.len());
        let mut layer_weight = HashMap::with_capacity(network.len());
        let total_macs = network.total_macs() as f64;
        for layer in network.layers() {
            let mut norms: Vec<f64> = weights::channel_l1_norms(layer)
                .into_iter()
                .map(f64::from)
                // lint: allow(hot-alloc) — one-time model build; `new` collides with hot constructors
                .collect();
            norms.sort_by(f64::total_cmp);
            let total: f64 = norms.iter().sum();
            let mut acc = 0.0;
            let prefix: Vec<f64> = norms
                .iter()
                .map(|n| {
                    acc += n / total;
                    acc
                })
                // lint: allow(hot-alloc) — one-time model build; `new` collides with hot constructors
                .collect();
            // lint: allow(hot-format) — labels keyed once at construction, not per cost call
            layer_prefix_mass.insert(layer.label().to_string(), prefix);
            // Layers doing more work carry more representational weight.
            // lint: allow(hot-format) — labels keyed once at construction, not per cost call
            layer_weight.insert(layer.label().to_string(), layer.macs() as f64 / total_macs);
        }
        AccuracyModel {
            base_accuracy,
            layer_prefix_mass,
            layer_weight,
            sensitivity,
        }
    }

    /// Defaults mirroring an ImageNet-class model: base 0.76, a fully
    /// pruned average layer costs ~0.30 of absolute accuracy.
    pub fn for_network(network: &Network) -> Self {
        Self::new(network, 0.76, 0.30)
    }

    /// Unpruned accuracy.
    pub fn base_accuracy(&self) -> f64 {
        self.base_accuracy
    }

    /// Importance mass lost when `layer` keeps only `kept` of its original
    /// channels (least-important-first removal). Returns `None` for unknown
    /// layers or invalid counts.
    pub fn pruned_mass(&self, label: &str, kept: usize) -> Option<f64> {
        let prefix = self.layer_prefix_mass.get(label)?;
        let original = prefix.len();
        if kept == 0 || kept > original {
            return None;
        }
        let removed = original - kept;
        Some(if removed == 0 {
            0.0
        } else {
            prefix[removed - 1]
        })
    }

    /// Estimated accuracy when each layer keeps the given channel count.
    ///
    /// Layers absent from the map are treated as unpruned.
    ///
    /// # Panics
    ///
    /// Panics if a label is unknown or a count is invalid — the pruner
    /// constructs these maps from the same catalog, so mismatches are bugs.
    pub fn accuracy_with(&self, kept_channels: &HashMap<String, usize>) -> f64 {
        // Accumulate in label order: float sums are order-sensitive, and
        // hash-order iteration would vary the result across processes.
        let mut entries: Vec<(&String, usize)> =
            kept_channels.iter().map(|(l, &k)| (l, k)).collect();
        entries.sort();
        let mut loss = 0.0;
        for (label, kept) in entries {
            let mass = self
                .pruned_mass(label, kept)
                .unwrap_or_else(|| panic!("invalid pruning config for {label}: keep {kept}"));
            let weight = self.layer_weight[label];
            // Convex loss: the least-important channels cost little, the
            // last ones a lot (mass is the fraction of importance removed).
            loss += self.sensitivity * weight * mass.powf(1.6);
        }
        (self.base_accuracy - loss).max(0.0)
    }

    /// Convenience for a single-layer what-if.
    pub fn accuracy_with_layer(&self, label: &str, kept: usize) -> f64 {
        let mut m = HashMap::new();
        m.insert(label.to_string(), kept);
        self.accuracy_with(&m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pruneperf_models::resnet50;

    fn model() -> AccuracyModel {
        AccuracyModel::for_network(&resnet50())
    }

    #[test]
    fn unpruned_network_keeps_base_accuracy() {
        let m = model();
        let full: HashMap<String, usize> = resnet50()
            .layers()
            .iter()
            .map(|l| (l.label().to_string(), l.c_out()))
            .collect();
        assert!((m.accuracy_with(&full) - 0.76).abs() < 1e-12);
    }

    #[test]
    fn accuracy_is_monotone_in_kept_channels() {
        let m = model();
        let mut prev = -1.0;
        for kept in (16..=128).step_by(16) {
            let acc = m.accuracy_with_layer("ResNet.L16", kept);
            assert!(acc >= prev, "kept {kept}: {acc} < {prev}");
            prev = acc;
        }
    }

    #[test]
    fn pruning_is_saturating() {
        // Removing the first 32 channels costs less than the next 32.
        let m = model();
        let a_full = m.accuracy_with_layer("ResNet.L16", 128);
        let a_96 = m.accuracy_with_layer("ResNet.L16", 96);
        let a_64 = m.accuracy_with_layer("ResNet.L16", 64);
        let first = a_full - a_96;
        let second = a_96 - a_64;
        assert!(second > first, "first {first}, second {second}");
    }

    #[test]
    fn heavier_layers_cost_more() {
        let m = model();
        // Prune both layers to half; the heavier (more MACs) one hurts more.
        let net = resnet50();
        let l2 = net.layer("ResNet.L2").unwrap(); // 3x3 @56: heavy
        let l47 = net.layer("ResNet.L47").unwrap(); // 1x1 @7: light
        let d2 = 0.76 - m.accuracy_with_layer(l2.label(), l2.c_out() / 2);
        let d47 = 0.76 - m.accuracy_with_layer(l47.label(), l47.c_out() / 2);
        assert!(d2 > d47, "L2 loss {d2} vs L47 loss {d47}");
    }

    #[test]
    fn pruned_mass_bounds() {
        let m = model();
        assert_eq!(m.pruned_mass("ResNet.L16", 128), Some(0.0));
        let all_but_one = m.pruned_mass("ResNet.L16", 1).unwrap();
        assert!(all_but_one > 0.9 && all_but_one <= 1.0);
        assert_eq!(m.pruned_mass("ResNet.L16", 0), None);
        assert_eq!(m.pruned_mass("ResNet.L16", 129), None);
        assert_eq!(m.pruned_mass("Nope", 1), None);
    }

    #[test]
    fn deterministic() {
        let a = model();
        let b = model();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "invalid pruning config")]
    fn invalid_map_panics() {
        let m = model();
        let mut bad = HashMap::new();
        bad.insert("ResNet.L16".to_string(), 0usize);
        let _ = m.accuracy_with(&bad);
    }
}

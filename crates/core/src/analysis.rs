//! Speedup / slowdown heatmaps over whole networks — the machinery behind
//! Figs 1, 6, 8–11, 13, 16, 17 and 19.
//!
//! For each layer (column) and pruning distance `p` (row), the paper
//! reports the *cumulative best* (speedup tables) or *cumulative worst*
//! (slowdown tables) latency ratio achievable by pruning **up to** `p`
//! channels — which is why cells never get worse down a column of Fig 6 and
//! never get better down a column of Fig 1.

use std::fmt;

use serde::{Deserialize, Serialize};

use pruneperf_backends::ConvBackend;
use pruneperf_models::Network;
use pruneperf_profiler::LayerProfiler;

/// The prune distances used by most of the paper's heatmaps.
pub const PAPER_DISTANCES: [usize; 7] = [1, 3, 7, 15, 31, 63, 127];

/// The shorter distance list of Fig 1.
pub const FIG1_DISTANCES: [usize; 5] = [1, 7, 15, 31, 63];

/// What a heatmap's cells measure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HeatmapKind {
    /// `t(original) / t(pruned)` maximized over distances `≤ p` —
    /// “maximum speedup [x times]”.
    MaxSpeedup,
    /// `t(pruned) / t(original)` maximized over distances `≤ p` —
    /// “maximum slowdown [x times]” (Fig 1).
    MaxSlowdown,
}

/// A layers × prune-distances table of latency ratios.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Heatmap {
    kind: HeatmapKind,
    backend: String,
    device: String,
    layer_labels: Vec<String>,
    distances: Vec<usize>,
    /// `cells[row][col]` — row = distance index, col = layer index.
    /// `None` where the layer has too few channels for the distance.
    cells: Vec<Vec<Option<f64>>>,
}

impl Heatmap {
    /// What the cells measure.
    pub fn kind(&self) -> HeatmapKind {
        self.kind
    }

    /// Layer labels (columns).
    pub fn layer_labels(&self) -> &[String] {
        &self.layer_labels
    }

    /// Prune distances (rows).
    pub fn distances(&self) -> &[usize] {
        &self.distances
    }

    /// Cell at (distance row, layer column).
    pub fn cell(&self, row: usize, col: usize) -> Option<f64> {
        self.cells
            .get(row)
            .and_then(|r| r.get(col))
            .copied()
            .flatten()
    }

    /// Cell looked up by distance and layer label.
    pub fn cell_at(&self, distance: usize, label: &str) -> Option<f64> {
        let row = self.distances.iter().position(|&d| d == distance)?;
        let col = self.layer_labels.iter().position(|l| l == label)?;
        self.cell(row, col)
    }

    /// Largest ratio anywhere in the table (the “up to N×” headline).
    pub fn max_ratio(&self) -> f64 {
        self.cells
            .iter()
            .flatten()
            .flatten()
            .copied()
            .fold(0.0, f64::max)
    }

    /// Renders the heatmap as CSV (`prune_distance` rows × layer columns;
    /// empty cells stay blank) for external plotting.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("prune_distance");
        for l in &self.layer_labels {
            out.push(',');
            out.push_str(l);
        }
        out.push('\n');
        for (i, d) in self.distances.iter().enumerate() {
            out.push_str(&d.to_string());
            for j in 0..self.layer_labels.len() {
                out.push(',');
                if let Some(v) = self.cell(i, j) {
                    out.push_str(&format!("{v:.4}"));
                }
            }
            out.push('\n');
        }
        out
    }

    /// Iterator over `(distance, label, ratio)` for present cells.
    pub fn iter_cells(&self) -> impl Iterator<Item = (usize, &str, f64)> + '_ {
        self.distances.iter().enumerate().flat_map(move |(i, &d)| {
            self.layer_labels
                .iter()
                .enumerate()
                .filter_map(move |(j, l)| self.cell(i, j).map(|v| (d, l.as_str(), v)))
        })
    }
}

impl fmt::Display for Heatmap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} — {} on {} [rows: prune distance, cols: layer]",
            match self.kind {
                HeatmapKind::MaxSpeedup => "Maximum speedup [x times]",
                HeatmapKind::MaxSlowdown => "Maximum slowdown [x times]",
            },
            self.backend,
            self.device
        )?;
        write!(f, "{:>10}", "")?;
        for l in &self.layer_labels {
            // Short label: strip the network prefix.
            let short = l.rsplit('.').next().unwrap_or(l);
            write!(f, "{short:>7}")?;
        }
        writeln!(f)?;
        for (i, d) in self.distances.iter().enumerate() {
            write!(f, "Prune={d:<4}")?;
            for j in 0..self.layer_labels.len() {
                match self.cell(i, j) {
                    Some(v) => write!(f, "{:>6.1}x", v)?,
                    None => write!(f, "{:>7}", "-")?,
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Profiles every layer of `network` at the original channel count and at
/// every pruned count down to `max(distances)`, then builds the heatmap.
fn build(
    kind: HeatmapKind,
    profiler: &LayerProfiler,
    backend: &dyn ConvBackend,
    network: &Network,
    distances: &[usize],
) -> Heatmap {
    let max_d = distances.iter().copied().max().unwrap_or(0);
    let mut cells: Vec<Vec<Option<f64>>> = vec![Vec::new(); distances.len()];
    for layer in network.layers() {
        let t0 = profiler.measure(backend, layer).median_ms();
        // Latency at every pruned count from 1..=max_d (where valid).
        let ratios: Vec<f64> = (1..=max_d.min(layer.c_out().saturating_sub(1)))
            .map(|p| {
                // lint: allow(unwrap) — p is capped at c_out - 1 by the range above
                let pruned = layer.pruned_by(p).expect("distance checked");
                let t = profiler.measure(backend, &pruned).median_ms();
                match kind {
                    HeatmapKind::MaxSpeedup => t0 / t,
                    HeatmapKind::MaxSlowdown => t / t0,
                }
            })
            // lint: allow(hot-alloc) — one row vector per heatmap build, not per cost call
            .collect();
        for (row, &d) in distances.iter().enumerate() {
            let cell = if d <= ratios.len() {
                // lint: allow(index) — guarded by `d <= ratios.len()` on the line above
                ratios[..d]
                    .iter()
                    .copied()
                    .fold(None, |acc: Option<f64>, r| {
                        Some(acc.map_or(r, |a| a.max(r)))
                    })
            } else {
                None
            };
            // lint: allow(index) — row comes from enumerate() over cells' own rows
            cells[row].push(cell);
        }
    }
    Heatmap {
        kind,
        backend: backend.name().to_string(),
        device: profiler.device().name().to_string(),
        layer_labels: network
            .layers()
            .iter()
            .map(|l| l.label().to_string())
            .collect(),
        distances: distances.to_vec(),
        cells,
    }
}

/// “Maximum speedup” heatmap (Figs 6, 8–11, 13, 16, 17, 19).
///
/// ```
/// use pruneperf_backends::Cudnn;
/// use pruneperf_core::analysis;
/// use pruneperf_gpusim::Device;
/// use pruneperf_models::alexnet;
/// use pruneperf_profiler::LayerProfiler;
///
/// let profiler = LayerProfiler::noiseless(&Device::jetson_tx2());
/// let h = analysis::speedup_table(&profiler, &Cudnn::new(), &alexnet(), &[31, 63]);
/// assert_eq!(h.distances(), &[31, 63]);
/// assert!(h.max_ratio() >= 1.0);
/// ```
pub fn speedup_table(
    profiler: &LayerProfiler,
    backend: &dyn ConvBackend,
    network: &Network,
    distances: &[usize],
) -> Heatmap {
    build(
        HeatmapKind::MaxSpeedup,
        profiler,
        backend,
        network,
        distances,
    )
}

/// “Maximum slowdown” heatmap (Fig 1).
pub fn slowdown_table(
    profiler: &LayerProfiler,
    backend: &dyn ConvBackend,
    network: &Network,
    distances: &[usize],
) -> Heatmap {
    build(
        HeatmapKind::MaxSlowdown,
        profiler,
        backend,
        network,
        distances,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::analysis_net as tiny_net;
    use pruneperf_backends::{AclGemm, Cudnn};
    use pruneperf_gpusim::Device;
    use pruneperf_models::{alexnet, ConvLayerSpec, Network};

    #[test]
    fn speedup_rows_are_monotone_nondecreasing() {
        let d = Device::jetson_tx2();
        let p = LayerProfiler::noiseless(&d);
        let h = speedup_table(&p, &Cudnn::new(), &tiny_net(), &[1, 3, 7, 15, 31]);
        for col in 0..h.layer_labels().len() {
            let mut prev = 0.0f64;
            for row in 0..h.distances().len() {
                if let Some(v) = h.cell(row, col) {
                    assert!(v + 1e-12 >= prev, "col {col} row {row}: {v} < {prev}");
                    prev = v;
                }
            }
        }
    }

    #[test]
    fn slowdown_table_catches_acl_direct_style_regressions() {
        let d = Device::mali_g72_hikey970();
        let p = LayerProfiler::noiseless(&d);
        let h = slowdown_table(&p, &AclGemm::new(), &tiny_net(), &[1, 7, 15]);
        // Pruning 7 from 96 hits 89..95, which contains split sizes -> >1.
        let v = h.cell_at(7, "T.L1").unwrap();
        assert!(v > 1.2, "expected a split-induced slowdown, got {v:.2}");
        // Pruning 1 (95 channels, c4=96 fast) must not slow down.
        let v1 = h.cell_at(1, "T.L1").unwrap();
        assert!(v1 < 1.1, "prune=1 should be harmless, got {v1:.2}");
    }

    #[test]
    fn distances_beyond_layer_width_are_absent() {
        let d = Device::jetson_tx2();
        let p = LayerProfiler::noiseless(&d);
        let net = Network::new(
            "Narrow",
            vec![ConvLayerSpec::new("N.L0", 1, 1, 0, 8, 12, 7, 7)],
        );
        let h = speedup_table(&p, &Cudnn::new(), &net, &[1, 15, 31]);
        assert!(h.cell_at(1, "N.L0").is_some());
        assert!(h.cell_at(15, "N.L0").is_none());
        assert!(h.cell_at(31, "N.L0").is_none());
    }

    #[test]
    fn display_renders_rows_and_dashes() {
        let d = Device::jetson_tx2();
        let p = LayerProfiler::noiseless(&d);
        let net = Network::new(
            "Narrow",
            vec![ConvLayerSpec::new("N.L0", 1, 1, 0, 8, 12, 7, 7)],
        );
        let h = speedup_table(&p, &Cudnn::new(), &net, &[1, 31]);
        let s = h.to_string();
        assert!(s.contains("Prune=1"), "{s}");
        assert!(s.contains('-'), "{s}");
    }

    #[test]
    fn csv_renders_blank_for_missing_cells() {
        let d = Device::jetson_tx2();
        let p = LayerProfiler::noiseless(&d);
        let net = Network::new(
            "Narrow",
            vec![ConvLayerSpec::new("N.L0", 1, 1, 0, 8, 12, 7, 7)],
        );
        let h = speedup_table(&p, &Cudnn::new(), &net, &[1, 31]);
        let csv = h.to_csv();
        let lines: Vec<&str> = csv.trim_end().lines().collect();
        assert_eq!(lines[0], "prune_distance,N.L0");
        assert!(lines[1].starts_with("1,1."));
        assert_eq!(lines[2], "31,");
    }

    #[test]
    fn iter_cells_skips_missing() {
        let d = Device::jetson_tx2();
        let p = LayerProfiler::noiseless(&d);
        let net = Network::new(
            "Narrow",
            vec![ConvLayerSpec::new("N.L0", 1, 1, 0, 8, 12, 7, 7)],
        );
        let h = speedup_table(&p, &Cudnn::new(), &net, &[1, 31]);
        let cells: Vec<_> = h.iter_cells().collect();
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].0, 1);
    }

    #[test]
    fn alexnet_cudnn_headline_band() {
        // Fig 9: AlexNet with cuDNN reaches ~1.2-1.8x at distance 127.
        let d = Device::jetson_tx2();
        let p = LayerProfiler::noiseless(&d);
        let h = speedup_table(&p, &Cudnn::new(), &alexnet(), &[127]);
        let max = h.max_ratio();
        assert!((1.1..3.0).contains(&max), "AlexNet max speedup {max:.2}");
    }
}

//! Shared test fixtures: the small networks and profiler setups that the
//! unit, property, differential and validation suites all build on.
//!
//! Before this module each test file grew its own copy of these builders
//! (`crates/core/src/pruner.rs`, `crates/core/src/analysis.rs`,
//! `tests/model_validation.rs`, the chaos drills all had near-identical
//! `tiny_net`/`setup` helpers). Centralizing them keeps the *shapes* —
//! which the assertions are numerically tuned to — in one place.
//!
//! This module is compiled into the library so integration tests and other
//! crates (bench, CLI tests) can use it, but it is **not** part of the
//! stable API: fixtures may change shape whenever the suites need them to.

use std::collections::HashMap;

use pruneperf_gpusim::Device;
use pruneperf_models::{ConvLayerSpec, Network};
use pruneperf_profiler::LayerProfiler;

use crate::accuracy::AccuracyModel;

/// Two mid-size layers (128→128 3×3 and 128→256 1×1 at 28×28) so GPU work
/// dominates fixed dispatch overhead and aggressive latency budgets are
/// actually reachable. The pruner/search quality tests are tuned to this
/// shape.
pub fn tiny_net() -> Network {
    Network::new(
        "Tiny",
        vec![
            ConvLayerSpec::new("T.L0", 3, 1, 1, 128, 128, 28, 28),
            ConvLayerSpec::new("T.L1", 1, 1, 0, 128, 256, 28, 28),
        ],
    )
}

/// The analysis-table twin of [`tiny_net`]: smaller channel counts
/// (16→64, 64→96 at 14×14) whose staircase split sizes the heatmap
/// regression tests are tuned to.
pub fn analysis_net() -> Network {
    Network::new(
        "Tiny",
        vec![
            ConvLayerSpec::new("T.L0", 3, 1, 1, 16, 64, 14, 14),
            ConvLayerSpec::new("T.L1", 1, 1, 0, 64, 96, 14, 14),
        ],
    )
}

/// Three layers small enough that the joint staircase cross product is
/// exhaustively enumerable (between ~10² and ~4×10³ configurations on the
/// paper devices) yet rich enough that every device has several optimal
/// points per layer — the fixture for the search differential harness and
/// the `search_beam_small` benchmark.
pub fn micro_net() -> Network {
    Network::new(
        "Micro",
        vec![
            ConvLayerSpec::new("M.L0", 3, 1, 1, 48, 96, 14, 14),
            ConvLayerSpec::new("M.L1", 3, 1, 1, 96, 128, 14, 14),
            ConvLayerSpec::new("M.L2", 1, 1, 0, 128, 192, 14, 14),
        ],
    )
}

/// Three layers whose staircase ladders deliberately trip one-layer-at-a-
/// time trading: the coarse Mali workgroup quanta make the greedy §V loop
/// overshoot its last trade, so the joint optimum keeps a *different*
/// per-layer split with strictly lower latency, lower energy and higher
/// accuracy. On the CUDA devices the ladders are smooth enough that
/// greedy stays optimal — exactly the contrast the beats-greedy
/// differential test and `ext8` pin. Budgets are part of the fixture:
/// 0.8 on HiKey 970, 0.6 on Odroid XU4.
pub fn ragged_net() -> Network {
    Network::new(
        "Ragged",
        vec![
            ConvLayerSpec::new("R.L0", 5, 1, 2, 24, 88, 28, 28),
            ConvLayerSpec::new("R.L1", 3, 1, 1, 88, 136, 14, 14),
            ConvLayerSpec::new("R.L2", 1, 1, 0, 136, 160, 14, 14),
        ],
    )
}

/// A 3×3, stride-1, 8→12 layer at 14×14 — the shape the cross-stack
/// validation suite checks instruction/MAC ratios on. `pad` is 1 for the
/// "same" variant and 0 for the "valid" variant.
pub fn val_layer(label: &str, pad: usize) -> ConvLayerSpec {
    ConvLayerSpec::new(label, 3, 1, pad, 8, 12, 14, 14)
}

/// A property-test layer: stride 1, padding 1 iff `kernel == 3`, labelled
/// `P.L{index}`. Mirrors the shapes `network_strategy` generates.
pub fn prop_layer(
    index: usize,
    kernel: usize,
    spatial: usize,
    c_in: usize,
    c_out: usize,
) -> ConvLayerSpec {
    let pad = if kernel == 3 { 1 } else { 0 };
    ConvLayerSpec::new(
        format!("P.L{index}"),
        kernel,
        1,
        pad,
        c_in,
        c_out,
        spatial,
        spatial,
    )
}

/// Builds the property-test network `"Prop"` from `(kernel, spatial,
/// c_in, c_out)` shape tuples via [`prop_layer`].
pub fn prop_network(shapes: &[(usize, usize, usize, usize)]) -> Network {
    let specs = shapes
        .iter()
        .enumerate()
        .map(|(i, &(k, hw, ci, co))| prop_layer(i, k, hw, ci, co))
        .collect();
    Network::new("Prop", specs)
}

/// The standard deterministic harness: a noiseless profiler on `device`
/// (single exact run per measurement) plus the surrogate accuracy model
/// fitted to `network`.
pub fn noiseless_setup(network: &Network, device: &Device) -> (LayerProfiler, AccuracyModel) {
    (
        LayerProfiler::noiseless(device),
        AccuracyModel::for_network(network),
    )
}

/// A keep-everything map for `network` — the identity pruning decision,
/// useful as a baseline in plan-level tests.
pub fn full_keep(network: &Network) -> HashMap<String, usize> {
    network
        .layers()
        .iter()
        .map(|l| (l.label().to_string(), l.c_out()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_have_the_documented_shapes() {
        assert_eq!(tiny_net().len(), 2);
        assert_eq!(analysis_net().len(), 2);
        assert_eq!(micro_net().len(), 3);
        assert_eq!(ragged_net().len(), 3);
        assert_eq!(val_layer("Val.L0", 1).pad(), 1);
        assert_eq!(prop_layer(0, 3, 14, 8, 16).pad(), 1);
        assert_eq!(prop_layer(1, 1, 14, 8, 16).pad(), 0);
        let net = prop_network(&[(3, 14, 8, 16), (1, 14, 16, 32)]);
        assert_eq!(net.len(), 2);
        assert_eq!(net.layers()[1].label(), "P.L1");
        assert_eq!(full_keep(&net)["P.L0"], 16);
    }
}

//! Exhaustive pruning-plan search for small networks.
//!
//! The §V loop uses a greedy trade (latency saved per accuracy lost), which
//! is fast but not provably optimal. For networks with few layers the
//! candidate space — the cross product of each layer's staircase optimal
//! points — is small enough to enumerate, giving (a) ground truth to
//! validate the greedy and beam searches against and (b) an exact solver
//! users can run on sub-networks they care about.

use std::collections::HashMap;

use pruneperf_backends::ConvBackend;
use pruneperf_models::Network;
use pruneperf_profiler::LayerProfiler;

use super::SearchSpace;
use crate::accuracy::AccuracyModel;

/// An exhaustively-found pruning configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ExactPlan {
    /// Kept channels per layer label.
    pub kept: HashMap<String, usize>,
    /// Summed per-layer latency, ms.
    pub latency_ms: f64,
    /// Estimated accuracy.
    pub accuracy: f64,
}

/// Exhaustive search over the per-layer staircase candidates.
///
/// Returns the configuration with the **highest accuracy among those whose
/// latency is at most `budget_fraction` of the unpruned latency**, or
/// `None` when no candidate combination meets the budget.
///
/// # Panics
///
/// Panics if the candidate cross product exceeds `max_configs` — this is an
/// exact solver for *small* problems; use [`crate::PerfAwarePruner`] or
/// [`super::search`] otherwise.
pub fn exhaustive_prune_to_latency(
    profiler: &LayerProfiler,
    accuracy: &AccuracyModel,
    backend: &dyn ConvBackend,
    network: &Network,
    budget_fraction: f64,
    max_configs: usize,
) -> Option<ExactPlan> {
    let space = SearchSpace::build_for(profiler, accuracy, backend, network);
    let total_configs = space.total_configs();
    assert!(
        total_configs <= max_configs,
        "{total_configs} configurations exceed the exhaustive-search cap {max_configs}"
    );

    let unpruned_ms: f64 = network
        .layers()
        .iter()
        .map(|l| profiler.measure(backend, l).median_ms())
        .sum();
    let budget = unpruned_ms * budget_fraction;

    let mut best: Option<ExactPlan> = None;
    for genome in space.enumerate_within(max_configs) {
        let latency: f64 = genome
            .iter()
            .enumerate()
            .map(|(i, &slot)| space.ladder(i)[slot].1)
            .sum();
        if latency <= budget {
            let kept = space.kept_map(&genome);
            let acc = accuracy.accuracy_with(&kept);
            if best.as_ref().is_none_or(|b| acc > b.accuracy) {
                best = Some(ExactPlan {
                    kept,
                    latency_ms: latency,
                    accuracy: acc,
                });
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit;
    use crate::PerfAwarePruner;
    use pruneperf_backends::AclGemm;
    use pruneperf_gpusim::Device;

    #[test]
    fn exact_plan_meets_budget_and_dominates_nothing_better() {
        let d = Device::mali_g72_hikey970();
        let net = testkit::tiny_net();
        let (p, a) = testkit::noiseless_setup(&net, &d);
        let backend = AclGemm::new();
        let exact = exhaustive_prune_to_latency(&p, &a, &backend, &net, 0.8, 10_000).unwrap();
        let unpruned: f64 = net
            .layers()
            .iter()
            .map(|l| p.measure(&backend, l).median_ms())
            .sum();
        assert!(exact.latency_ms <= unpruned * 0.8 * 1.0001);
        assert!(exact.accuracy > 0.5);
    }

    /// The greedy §V loop stays close to the exhaustive optimum on a small
    /// network (the quality argument for using it at ResNet scale).
    #[test]
    fn greedy_is_near_optimal_on_small_networks() {
        let d = Device::mali_g72_hikey970();
        let net = testkit::tiny_net();
        let (p, a) = testkit::noiseless_setup(&net, &d);
        let backend = AclGemm::new();
        for budget in [0.9, 0.8, 0.7, 0.6] {
            let Some(exact) = exhaustive_prune_to_latency(&p, &a, &backend, &net, budget, 10_000)
            else {
                continue;
            };
            let greedy = PerfAwarePruner::new(&p, &a).prune_to_latency(&backend, &net, budget);
            // Greedy may spend slightly more accuracy but never more than
            // 2 absolute points on this scale.
            assert!(
                greedy.accuracy() >= exact.accuracy - 0.02,
                "budget {budget}: greedy {:.4} vs exact {:.4}",
                greedy.accuracy(),
                exact.accuracy
            );
            assert!(
                greedy.latency_ms() <= exact.latency_ms * 1.1 + 1e-9
                    || greedy.accuracy() >= exact.accuracy - 0.02
            );
        }
    }

    #[test]
    fn impossible_budget_returns_none() {
        let d = Device::mali_g72_hikey970();
        let net = testkit::tiny_net();
        let (p, a) = testkit::noiseless_setup(&net, &d);
        let exact = exhaustive_prune_to_latency(&p, &a, &AclGemm::new(), &net, 0.0001, 10_000);
        assert!(exact.is_none());
    }

    #[test]
    #[should_panic(expected = "exceed the exhaustive-search cap")]
    fn config_cap_is_enforced() {
        let d = Device::mali_g72_hikey970();
        let net = testkit::tiny_net();
        let (p, a) = testkit::noiseless_setup(&net, &d);
        let _ = exhaustive_prune_to_latency(&p, &a, &AclGemm::new(), &net, 0.8, 2);
    }
}

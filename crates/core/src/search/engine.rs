//! Seeded beam and (μ+λ) evolutionary search over the joint channel space.
//!
//! Both solvers are pure functions of `(profiler inputs, seed, config)`:
//! every tie-break, parent pick and mutation is a [`super::splitmix64`]
//! hash of `(seed, structural position)`, so there is no RNG state to
//! advance, no clock, and no dependence on thread interleaving. Candidate
//! scoring fans out through [`super::evaluate_genomes`], which preserves
//! input order at any worker count — so the whole search, including the
//! final archive, is byte-identical at `--jobs 1` and `--jobs 8`.

use std::collections::{HashMap, HashSet};

use pruneperf_backends::ConvBackend;
use pruneperf_models::Network;
use pruneperf_profiler::{sweep, LayerProfiler};

use super::{evaluate_genomes, genome_hash, mix, ParetoArchive, ParetoPoint, SearchSpace};
use crate::accuracy::AccuracyModel;
use crate::PruningPlan;

/// Domain-separation tags for the hash streams, so parent selection,
/// mutation gating, mutation values and tie-breaks never correlate.
const TAG_INIT: u64 = 0x01;
const TAG_PARENT: u64 = 0x02;
const TAG_GATE: u64 = 0x03;
const TAG_VALUE: u64 = 0x04;
const TAG_FORCE: u64 = 0x05;

/// Which search algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchAlgo {
    /// Beam search: expand every beam genome by one ladder step per round,
    /// keep the `beam_width` best-ranked children, stop when the frontier
    /// is exhausted.
    Beam,
    /// (μ+λ) evolutionary search: μ = `beam_width` parents, λ = 2μ hashed
    /// mutations per generation, truncation selection by non-domination
    /// rank, for `generations` generations.
    Evolve,
}

impl SearchAlgo {
    /// CLI / JSON name of the algorithm.
    pub fn name(&self) -> &'static str {
        match self {
            SearchAlgo::Beam => "beam",
            SearchAlgo::Evolve => "evolve",
        }
    }
}

/// Search parameters. `seed` only influences tie-breaking (beam) and the
/// hashed initialization/mutation stream (evolve) — never measurements.
#[derive(Debug, Clone, Copy)]
pub struct SearchConfig {
    /// Algorithm to run.
    pub algo: SearchAlgo,
    /// Hash seed for all pseudo-random decisions.
    pub seed: u64,
    /// Beam width (beam) or population size μ (evolve). Clamped to ≥ 1.
    pub beam_width: usize,
    /// Generations to evolve; ignored by beam (it runs to frontier
    /// exhaustion, which the ladder lattice bounds).
    pub generations: usize,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            algo: SearchAlgo::Beam,
            seed: 1,
            beam_width: 8,
            generations: 12,
        }
    }
}

/// Everything a finished search reports. The counters obey
/// `evaluated == archived + dominated + duplicates` because every
/// evaluated genome is offered to the archive exactly once.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// The non-dominated front as full pruning plans, in the archive's
    /// canonical order.
    pub plans: Vec<PruningPlan>,
    /// Kept-channel genomes backing each plan, same order.
    pub genomes: Vec<Vec<usize>>,
    /// Distinct candidate configurations evaluated.
    pub evaluated: u64,
    /// Front size (points archived at the end).
    pub archived: usize,
    /// Candidates rejected or displaced by domination.
    pub dominated: u64,
    /// Candidates whose exact objective triple was already archived.
    pub duplicates: u64,
    /// Beam rounds or evolve generations actually executed.
    pub rounds: u64,
    /// Size of the full joint candidate space.
    pub total_configs: usize,
}

/// Runs the configured search and returns the non-dominated front.
///
/// Worker count comes from [`sweep::sweep_jobs`] (set by the CLI from
/// `--jobs`); the result is independent of it.
pub fn search(
    profiler: &LayerProfiler,
    accuracy: &AccuracyModel,
    backend: &dyn ConvBackend,
    network: &Network,
    config: &SearchConfig,
) -> SearchOutcome {
    let space = SearchSpace::build_for(profiler, accuracy, backend, network);
    let width = config.beam_width.max(1);
    let jobs = sweep::sweep_jobs();
    let evaluate = |genomes: &[Vec<usize>]| {
        evaluate_genomes(profiler, accuracy, backend, network, &space, genomes, jobs)
    };

    let mut archive: ParetoArchive<Vec<usize>> = ParetoArchive::new();
    let mut evaluated = 0u64;
    let mut rounds = 0u64;

    match config.algo {
        SearchAlgo::Beam => {
            let start = space.full_genome();
            let points = evaluate(std::slice::from_ref(&start));
            evaluated += 1;
            archive.offer(points[0], start.clone());
            let mut visited: HashSet<Vec<usize>> = HashSet::new();
            visited.insert(start.clone());
            let mut beam = vec![start];
            loop {
                // One ladder step down in one layer, from every beam genome.
                let mut frontier: Vec<Vec<usize>> = Vec::new();
                for genome in &beam {
                    for (l, &slot) in genome.iter().enumerate() {
                        if slot == 0 {
                            continue;
                        }
                        let mut child = genome.clone();
                        child[l] = slot - 1;
                        if visited.insert(child.clone()) {
                            frontier.push(child);
                        }
                    }
                }
                if frontier.is_empty() {
                    break;
                }
                rounds += 1;
                let points = evaluate(&frontier);
                evaluated += frontier.len() as u64;
                let mut scored: Vec<(bool, u64, Vec<usize>)> = frontier
                    .into_iter()
                    .zip(points)
                    .map(|(genome, point)| {
                        let on_front = archive.offer(point, genome.clone());
                        (on_front, genome_hash(config.seed, &genome), genome)
                    })
                    .collect();
                // Survivors (currently non-dominated) first, then the
                // seeded hash, then genome order — fully deterministic.
                scored.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
                beam = scored.into_iter().take(width).map(|(_, _, g)| g).collect();
            }
        }
        SearchAlgo::Evolve => {
            // Hashed initial population: the unpruned genome plus μ−1
            // pseudo-random genomes.
            let mut seen: HashMap<Vec<usize>, ParetoPoint> = HashMap::new();
            let mut population: Vec<Vec<usize>> = vec![space.full_genome()];
            for i in 1..width {
                let genome: Vec<usize> = (0..space.num_layers())
                    .map(|l| {
                        let len = space.ladder(l).len() as u64;
                        (mix(&[config.seed, TAG_INIT, i as u64, l as u64]) % len) as usize
                    })
                    .collect();
                if !population.contains(&genome) {
                    population.push(genome);
                }
            }
            let points = evaluate(&population);
            evaluated += population.len() as u64;
            for (genome, point) in population.iter().zip(&points) {
                seen.insert(genome.clone(), *point);
                archive.offer(*point, genome.clone());
            }
            for generation in 0..config.generations as u64 {
                rounds += 1;
                // λ = 2μ children by hashed point mutation.
                let mut children: Vec<Vec<usize>> = Vec::new();
                for j in 0..(2 * width) as u64 {
                    let parent = &population[(mix(&[config.seed, TAG_PARENT, generation, j])
                        % population.len() as u64)
                        as usize];
                    let mut child = parent.clone();
                    let layers = space.num_layers() as u64;
                    for (l, gene) in child.iter_mut().enumerate() {
                        let gate = mix(&[config.seed, TAG_GATE, generation, j, l as u64]);
                        if gate.is_multiple_of(layers) {
                            let len = space.ladder(l).len() as u64;
                            *gene = (mix(&[config.seed, TAG_VALUE, generation, j, l as u64])
                                % len) as usize;
                        }
                    }
                    if child == *parent {
                        // Force at least one gene to move so every child
                        // explores; pick the layer and offset by hash.
                        let l = (mix(&[config.seed, TAG_FORCE, generation, j]) % layers) as usize;
                        let len = space.ladder(l).len();
                        if len > 1 {
                            let step = 1
                                + (mix(&[config.seed, TAG_FORCE, generation, j, 1]) as usize
                                    % (len - 1));
                            child[l] = (child[l] + step) % len;
                        }
                    }
                    children.push(child);
                }
                let fresh: Vec<Vec<usize>> = {
                    let mut unique: Vec<Vec<usize>> = Vec::new();
                    for c in &children {
                        if !seen.contains_key(c) && !unique.contains(c) {
                            unique.push(c.clone());
                        }
                    }
                    unique
                };
                if !fresh.is_empty() {
                    let points = evaluate(&fresh);
                    evaluated += fresh.len() as u64;
                    for (genome, point) in fresh.iter().zip(&points) {
                        seen.insert(genome.clone(), *point);
                        archive.offer(*point, genome.clone());
                    }
                }
                // Truncation selection on the (μ+λ) pool by non-domination
                // rank, hashed tie-break, then genome order.
                let mut pool: Vec<Vec<usize>> = population.clone();
                for c in children {
                    if !pool.contains(&c) {
                        pool.push(c);
                    }
                }
                let pts: Vec<ParetoPoint> = pool.iter().map(|g| seen[g]).collect();
                let ranks = nondominated_ranks(&pts);
                let mut order: Vec<usize> = (0..pool.len()).collect();
                order.sort_by(|&x, &y| {
                    ranks[x]
                        .cmp(&ranks[y])
                        .then(
                            genome_hash(config.seed, &pool[x])
                                .cmp(&genome_hash(config.seed, &pool[y])),
                        )
                        .then(pool[x].cmp(&pool[y]))
                });
                population = order
                    .into_iter()
                    .take(width)
                    .map(|i| pool[i].clone())
                    .collect();
            }
        }
    }

    let policy = match config.algo {
        SearchAlgo::Beam => "search-beam",
        SearchAlgo::Evolve => "search-evolve",
    };
    let device = profiler.device().name().to_string();
    let mut plans = Vec::with_capacity(archive.len());
    let mut genomes = Vec::with_capacity(archive.len());
    for (point, genome) in archive.entries() {
        plans.push(PruningPlan::from_parts(
            policy,
            backend.name(),
            &device,
            network.name(),
            space.kept_map(genome),
            point.latency_ms,
            point.energy_mj,
            point.accuracy,
        ));
        genomes.push(genome.clone());
    }
    SearchOutcome {
        plans,
        genomes,
        evaluated,
        archived: archive.len(),
        dominated: archive.dominated(),
        duplicates: archive.duplicates(),
        rounds,
        total_configs: space.total_configs(),
    }
}

/// Non-domination rank per point (0 = on the pool's front; peel and
/// repeat). O(n²) per layer of peeling — the pools here are tens of
/// points.
fn nondominated_ranks(points: &[ParetoPoint]) -> Vec<usize> {
    let n = points.len();
    let mut rank = vec![usize::MAX; n];
    let mut remaining: Vec<usize> = (0..n).collect();
    let mut current = 0usize;
    while !remaining.is_empty() {
        let front: Vec<usize> = remaining
            .iter()
            .copied()
            .filter(|&i| {
                !remaining
                    .iter()
                    .any(|&j| j != i && points[j].dominates(&points[i]))
            })
            .collect();
        for &i in &front {
            rank[i] = current;
        }
        remaining.retain(|&i| rank[i] == usize::MAX);
        current += 1;
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit;
    use pruneperf_backends::AclGemm;
    use pruneperf_gpusim::Device;

    fn outcome_key(o: &SearchOutcome) -> Vec<(u64, u64, u64, String)> {
        o.plans
            .iter()
            .map(|p| {
                (
                    p.latency_ms().to_bits(),
                    p.energy_mj().to_bits(),
                    p.accuracy().to_bits(),
                    format!("{:?}", {
                        let mut kept: Vec<_> = p.kept_channels().iter().collect();
                        kept.sort();
                        kept
                    }),
                )
            })
            .collect()
    }

    #[test]
    fn beam_front_is_internally_nondominated_and_conserved() {
        let net = testkit::micro_net();
        let d = Device::mali_g72_hikey970();
        let (p, a) = testkit::noiseless_setup(&net, &d);
        let out = search(&p, &a, &AclGemm::new(), &net, &SearchConfig::default());
        assert!(out.archived > 0);
        assert_eq!(
            out.evaluated,
            out.archived as u64 + out.dominated + out.duplicates
        );
        for (i, x) in out.plans.iter().enumerate() {
            for (j, y) in out.plans.iter().enumerate() {
                if i == j {
                    continue;
                }
                let px = ParetoPoint {
                    latency_ms: x.latency_ms(),
                    energy_mj: x.energy_mj(),
                    accuracy: x.accuracy(),
                };
                let py = ParetoPoint {
                    latency_ms: y.latency_ms(),
                    energy_mj: y.energy_mj(),
                    accuracy: y.accuracy(),
                };
                assert!(!px.dominates(&py), "front plan {i} dominates {j}");
            }
        }
    }

    #[test]
    fn search_is_reproducible_for_a_seed_and_varies_by_algo() {
        let net = testkit::micro_net();
        let d = Device::jetson_tx2();
        let (p, a) = testkit::noiseless_setup(&net, &d);
        let backend = AclGemm::new();
        let cfg = SearchConfig {
            seed: 3,
            ..SearchConfig::default()
        };
        let once = search(&p, &a, &backend, &net, &cfg);
        let twice = search(&p, &a, &backend, &net, &cfg);
        assert_eq!(outcome_key(&once), outcome_key(&twice));
        assert_eq!(once.evaluated, twice.evaluated);

        let evolve = search(
            &p,
            &a,
            &backend,
            &net,
            &SearchConfig {
                algo: SearchAlgo::Evolve,
                seed: 3,
                ..SearchConfig::default()
            },
        );
        assert!(evolve.archived > 0);
        assert_eq!(
            evolve.evaluated,
            evolve.archived as u64 + evolve.dominated + evolve.duplicates
        );
        assert_eq!(evolve.plans[0].policy(), "search-evolve");
        assert_eq!(once.plans[0].policy(), "search-beam");
    }

    #[test]
    fn evolve_respects_generation_budget() {
        let net = testkit::tiny_net();
        let d = Device::jetson_nano();
        let (p, a) = testkit::noiseless_setup(&net, &d);
        let out = search(
            &p,
            &a,
            &AclGemm::new(),
            &net,
            &SearchConfig {
                algo: SearchAlgo::Evolve,
                seed: 1,
                beam_width: 4,
                generations: 3,
            },
        );
        assert_eq!(out.rounds, 3);
    }

    #[test]
    fn ranks_peel_fronts() {
        let pts = vec![
            ParetoPoint {
                latency_ms: 1.0,
                energy_mj: 1.0,
                accuracy: 0.9,
            },
            ParetoPoint {
                latency_ms: 2.0,
                energy_mj: 2.0,
                accuracy: 0.8,
            },
            ParetoPoint {
                latency_ms: 3.0,
                energy_mj: 3.0,
                accuracy: 0.7,
            },
        ];
        assert_eq!(nondominated_ranks(&pts), vec![0, 1, 2]);
    }
}

//! Whole-network pruning-plan search.
//!
//! The §V loop ([`crate::PerfAwarePruner`]) trades one layer at a time
//! against a single budget. This module searches the *joint* space of
//! per-layer kept-channel configurations instead, with three solvers that
//! share one candidate space and one evaluator:
//!
//! - [`exhaustive_prune_to_latency`] — exact enumeration for small
//!   networks (ground truth for the others);
//! - [`search`] with [`SearchAlgo::Beam`] — seeded beam search expanding
//!   one ladder step per round;
//! - [`search`] with [`SearchAlgo::Evolve`] — seeded (μ+λ) evolutionary
//!   search with pure-hash mutation.
//!
//! All of them walk [`SearchSpace`] ladders (each layer's staircase
//! optimal points plus the unpruned count) and score candidates through
//! the shared [`LayerProfiler`] cache, so evaluating a plan costs cache
//! lookups, not engine runs. Every random-looking choice — tie-breaking,
//! parent selection, mutation — is a splitmix64 hash of `(seed, position)`
//! with no RNG state and no clocks, so results are a pure function of
//! `(inputs, seed)` at any `--jobs` count.

mod archive;
mod engine;
mod exhaustive;

pub use archive::{ParetoArchive, ParetoPoint};
pub use engine::{search, SearchAlgo, SearchConfig, SearchOutcome};
pub use exhaustive::{exhaustive_prune_to_latency, ExactPlan};

use std::collections::HashMap;

use pruneperf_backends::ConvBackend;
use pruneperf_models::{ConvLayerSpec, Network};
use pruneperf_profiler::{sweep, LayerProfiler};

use crate::accuracy::AccuracyModel;
use crate::PerfAwarePruner;

/// The joint candidate space: one ladder of `(kept_channels, latency_ms)`
/// pairs per layer, in catalog (network) order.
///
/// Each ladder is the layer's staircase optimal points (ascending kept
/// count) with the unpruned channel count appended when the staircase did
/// not already surface it. A *genome* is one ladder index per layer; the
/// unpruned network is [`SearchSpace::full_genome`].
#[derive(Debug, Clone)]
pub struct SearchSpace {
    layers: Vec<(String, Vec<(usize, f64)>)>,
}

impl SearchSpace {
    /// Builds the ladders for `network` under `backend`.
    pub fn build_for(
        profiler: &LayerProfiler,
        accuracy: &AccuracyModel,
        backend: &dyn ConvBackend,
        network: &Network,
    ) -> SearchSpace {
        let pruner = PerfAwarePruner::new(profiler, accuracy);
        let mut layers: Vec<(String, Vec<(usize, f64)>)> = Vec::new();
        for layer in network.layers() {
            let mut cands = pruner.candidates_for(backend, layer);
            let full_ms = profiler.measure(backend, layer).median_ms();
            if !cands.iter().any(|&(c, _)| c == layer.c_out()) {
                cands.push((layer.c_out(), full_ms));
            }
            layers.push((layer.label().to_string(), cands));
        }
        SearchSpace { layers }
    }

    /// Number of layers (genome length).
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// The candidate ladder for layer `i`, ascending in kept channels.
    pub fn ladder(&self, i: usize) -> &[(usize, f64)] {
        &self.layers[i].1
    }

    /// The label of layer `i`.
    pub fn label_of(&self, i: usize) -> &str {
        &self.layers[i].0
    }

    /// Size of the full cross product.
    pub fn total_configs(&self) -> usize {
        self.layers.iter().map(|(_, c)| c.len()).product()
    }

    /// The genome selecting every layer's unpruned point.
    pub fn full_genome(&self) -> Vec<usize> {
        self.layers.iter().map(|(_, c)| c.len() - 1).collect()
    }

    /// Kept-channel map for a genome.
    ///
    /// # Panics
    ///
    /// Panics if the genome length or any index is out of range.
    pub fn kept_map(&self, genome: &[usize]) -> HashMap<String, usize> {
        assert_eq!(genome.len(), self.layers.len(), "genome length mismatch");
        genome
            .iter()
            .zip(&self.layers)
            .map(|(&slot, (label, cands))| (label.clone(), cands[slot].0))
            .collect()
    }

    /// Every genome in the cross product, odometer order.
    ///
    /// # Panics
    ///
    /// Panics if the space exceeds `max_configs` — enumeration is for
    /// small differential-test fixtures only.
    pub fn enumerate_within(&self, max_configs: usize) -> Vec<Vec<usize>> {
        let total = self.total_configs();
        assert!(
            total <= max_configs,
            "{total} configurations exceed the enumeration cap {max_configs}"
        );
        let mut out = Vec::with_capacity(total);
        let mut indices = vec![0usize; self.layers.len()];
        loop {
            out.push(indices.clone());
            let mut i = 0;
            loop {
                if i == indices.len() {
                    return out;
                }
                indices[i] += 1;
                if indices[i] < self.layers[i].1.len() {
                    break;
                }
                indices[i] = 0;
                i += 1;
            }
        }
    }
}

/// Scores `genomes` in deterministic order: per-layer latencies come from
/// the cache's batched costing path (so a warm cache answers without any
/// engine run), energies from the same cache entries, accuracy from the
/// surrogate. The fan-out preserves input order, so the result is
/// byte-identical at any worker count `jobs`.
pub fn evaluate_genomes(
    profiler: &LayerProfiler,
    accuracy: &AccuracyModel,
    backend: &dyn ConvBackend,
    network: &Network,
    space: &SearchSpace,
    genomes: &[Vec<usize>],
    jobs: usize,
) -> Vec<ParetoPoint> {
    // lint: allow(hot-root) — the per-genome closure costs through `measure_batch`, already audited as a hot root; the wrapper adds no serving loop of its own
    sweep::ordered_parallel_map(genomes, jobs, |genome| {
        let specs: Vec<ConvLayerSpec> = network
            .layers()
            .iter()
            .zip(genome.iter().enumerate())
            .map(|(layer, (i, &slot))| {
                let kept = space.ladder(i)[slot].0;
                // lint: allow(unwrap) — ladder entries come from the layer's own staircase
                layer.with_c_out(kept).expect("ladder count validated")
            })
            .collect();
        let latency_ms: f64 = profiler
            .measure_batch(backend, &specs)
            .iter()
            .map(|m| m.median_ms())
            .sum();
        let energy_mj: f64 = specs.iter().map(|s| profiler.energy_mj(backend, s)).sum();
        let acc = accuracy.accuracy_with(&space.kept_map(genome));
        ParetoPoint {
            latency_ms,
            energy_mj,
            accuracy: acc,
        }
    })
}

/// The splitmix64 finalizer: a bijective avalanche mix. All search
/// tie-breaking and mutation decisions hash `(seed, position)` through
/// this, so there is no RNG state to share and no iteration-order
/// dependence.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Folds a sequence of words into one hash via repeated splitmix rounds.
pub(crate) fn mix(parts: &[u64]) -> u64 {
    parts
        .iter()
        .fold(0x9e37_79b9_7f4a_7c15u64, |h, &p| splitmix64(h ^ p))
}

/// Hash of a genome for tie-breaking, keyed by the search seed.
pub(crate) fn genome_hash(seed: u64, genome: &[usize]) -> u64 {
    genome
        .iter()
        .fold(splitmix64(seed), |h, &g| splitmix64(h ^ g as u64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit;
    use pruneperf_backends::AclGemm;
    use pruneperf_gpusim::Device;

    #[test]
    fn space_matches_network_shape_and_enumerates_fully() {
        let net = testkit::tiny_net();
        let d = Device::mali_g72_hikey970();
        let (p, a) = testkit::noiseless_setup(&net, &d);
        let space = SearchSpace::build_for(&p, &a, &AclGemm::new(), &net);
        assert_eq!(space.num_layers(), net.len());
        let all = space.enumerate_within(100_000);
        assert_eq!(all.len(), space.total_configs());
        assert_eq!(all.last().unwrap(), &space.full_genome());
    }

    #[test]
    fn evaluation_is_schedule_independent() {
        let net = testkit::tiny_net();
        let d = Device::jetson_nano();
        let (p, a) = testkit::noiseless_setup(&net, &d);
        let backend = AclGemm::new();
        let space = SearchSpace::build_for(&p, &a, &backend, &net);
        let genomes = space.enumerate_within(100_000);
        let one = evaluate_genomes(&p, &a, &backend, &net, &space, &genomes, 1);
        let eight = evaluate_genomes(&p, &a, &backend, &net, &space, &genomes, 8);
        assert_eq!(one.len(), eight.len());
        for (x, y) in one.iter().zip(&eight) {
            assert_eq!(x.latency_ms.to_bits(), y.latency_ms.to_bits());
            assert_eq!(x.energy_mj.to_bits(), y.energy_mj.to_bits());
            assert_eq!(x.accuracy.to_bits(), y.accuracy.to_bits());
        }
    }

    #[test]
    fn splitmix_is_stable() {
        // Pin a few values so the tie-break function can never drift
        // silently (goldens depend on it transitively).
        assert_eq!(splitmix64(0), 0xe220_a839_7b1d_cdaf);
        assert_eq!(splitmix64(1), 0x910a_2dec_8902_5cc1);
        assert_ne!(mix(&[1, 2]), mix(&[2, 1]));
    }
}

//! Non-dominated archive over the three pruning objectives.
//!
//! Generalizes the 2-D [`crate::pareto_front`] helper: where that function
//! filters a finished `(latency, accuracy)` slice, [`ParetoArchive`]
//! maintains the 3-D `(latency_ms, energy_mj, accuracy)` front *online*
//! while a search streams candidates in, and accounts for every insertion
//! so tests can prove conservation:
//!
//! ```text
//! inserted == archived + dominated + duplicates
//! ```
//!
//! The archived front is kept in a canonical order (latency ascending,
//! then energy ascending, then accuracy descending, then payload
//! ascending) that does not depend on insertion order, and duplicate
//! objective points deterministically keep the smallest payload — so the
//! archive's final state is invariant under any permutation of the same
//! insertions. (How a rejected point is *classified* — dominated vs
//! duplicate — can depend on arrival order; the conservation sum and the
//! final front never do.)

use std::cmp::Ordering;

/// A point in objective space: minimize latency and energy, maximize
/// accuracy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParetoPoint {
    /// End-to-end network latency, ms.
    pub latency_ms: f64,
    /// End-to-end energy estimate, mJ.
    pub energy_mj: f64,
    /// Estimated accuracy in `[0, 1]`.
    pub accuracy: f64,
}

impl ParetoPoint {
    /// `true` when `self` is no worse than `other` on every objective and
    /// strictly better on at least one.
    pub fn dominates(&self, other: &ParetoPoint) -> bool {
        let no_worse = self.latency_ms <= other.latency_ms
            && self.energy_mj <= other.energy_mj
            && self.accuracy >= other.accuracy;
        let strictly_better = self.latency_ms < other.latency_ms
            || self.energy_mj < other.energy_mj
            || self.accuracy > other.accuracy;
        no_worse && strictly_better
    }

    /// Exact objective equality (bit-for-bit under `total_cmp`).
    fn same(&self, other: &ParetoPoint) -> bool {
        self.latency_ms.total_cmp(&other.latency_ms) == Ordering::Equal
            && self.energy_mj.total_cmp(&other.energy_mj) == Ordering::Equal
            && self.accuracy.total_cmp(&other.accuracy) == Ordering::Equal
    }

    /// Canonical archive order: latency asc, energy asc, accuracy desc.
    fn canonical_cmp(&self, other: &ParetoPoint) -> Ordering {
        self.latency_ms
            .total_cmp(&other.latency_ms)
            .then(self.energy_mj.total_cmp(&other.energy_mj))
            .then(other.accuracy.total_cmp(&self.accuracy))
    }
}

/// An online non-dominated archive with per-insertion accounting.
///
/// `T` is the payload carried with each point (a genome, a plan id, …);
/// its `Ord` breaks ties between duplicate objective points (smallest
/// payload wins), which is what makes the archive permutation-invariant.
#[derive(Debug, Clone, Default)]
pub struct ParetoArchive<T> {
    entries: Vec<(ParetoPoint, T)>,
    inserted: u64,
    dominated: u64,
    duplicates: u64,
}

impl<T: Ord> ParetoArchive<T> {
    /// An empty archive.
    pub fn new() -> Self {
        ParetoArchive {
            entries: Vec::new(),
            inserted: 0,
            dominated: 0,
            duplicates: 0,
        }
    }

    /// Offers a point to the archive. Returns `true` when the point is on
    /// the current front afterwards (inserted, or an exact duplicate of a
    /// front point).
    ///
    /// Displaced entries — previously archived points now dominated by
    /// `point` — move to the dominated count, preserving the conservation
    /// identity.
    ///
    /// # Panics
    ///
    /// Panics if any objective is non-finite; search evaluation never
    /// produces NaN/inf and admitting one would poison `dominates`.
    pub fn offer(&mut self, point: ParetoPoint, payload: T) -> bool {
        assert!(
            point.latency_ms.is_finite()
                && point.energy_mj.is_finite()
                && point.accuracy.is_finite(),
            "archive points must be finite"
        );
        self.inserted += 1;

        // Exact duplicate: keep the smaller payload, count the loser.
        if let Some(slot) = self.entries.iter().position(|(p, _)| p.same(&point)) {
            self.duplicates += 1;
            if payload < self.entries[slot].1 {
                self.entries[slot].1 = payload;
            }
            return true;
        }

        if self.entries.iter().any(|(p, _)| p.dominates(&point)) {
            self.dominated += 1;
            return false;
        }

        // The newcomer is on the front: retire everything it dominates.
        let before = self.entries.len();
        self.entries.retain(|(p, _)| !point.dominates(p));
        self.dominated += (before - self.entries.len()) as u64;

        let at = self
            .entries
            .partition_point(|(p, t)| match p.canonical_cmp(&point) {
                Ordering::Less => true,
                Ordering::Greater => false,
                Ordering::Equal => *t < payload,
            });
        self.entries.insert(at, (point, payload));
        true
    }

    /// The archived front in canonical order.
    pub fn entries(&self) -> &[(ParetoPoint, T)] {
        &self.entries
    }

    /// Number of points currently archived.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing has been archived.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total points offered via [`ParetoArchive::offer`].
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    /// Points rejected or displaced because something dominates them.
    pub fn dominated(&self) -> u64 {
        self.dominated
    }

    /// Points whose exact objective triple was already archived.
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(l: f64, e: f64, a: f64) -> ParetoPoint {
        ParetoPoint {
            latency_ms: l,
            energy_mj: e,
            accuracy: a,
        }
    }

    #[test]
    fn dominated_points_never_surface() {
        let mut ar = ParetoArchive::new();
        assert!(ar.offer(pt(10.0, 5.0, 0.9), 1u32));
        assert!(!ar.offer(pt(11.0, 6.0, 0.8), 2)); // worse everywhere
        assert!(ar.offer(pt(9.0, 7.0, 0.95), 3)); // trade-off survives
        assert_eq!(ar.len(), 2);
        assert_eq!(ar.dominated(), 1);
        assert_eq!(ar.inserted(), 3);
    }

    #[test]
    fn newcomer_displaces_dominated_entries() {
        let mut ar = ParetoArchive::new();
        ar.offer(pt(10.0, 5.0, 0.9), 1u32);
        ar.offer(pt(12.0, 5.0, 0.95), 2);
        // Dominates the first, trade-off with the second.
        assert!(ar.offer(pt(9.0, 4.0, 0.92), 3));
        assert_eq!(ar.len(), 2);
        assert_eq!(ar.dominated(), 1);
        assert_eq!(
            ar.inserted(),
            ar.len() as u64 + ar.dominated() + ar.duplicates()
        );
    }

    #[test]
    fn duplicates_keep_the_smallest_payload() {
        let mut a = ParetoArchive::new();
        a.offer(pt(10.0, 5.0, 0.9), 7u32);
        a.offer(pt(10.0, 5.0, 0.9), 3);
        let mut b = ParetoArchive::new();
        b.offer(pt(10.0, 5.0, 0.9), 3u32);
        b.offer(pt(10.0, 5.0, 0.9), 7);
        assert_eq!(a.entries(), b.entries());
        assert_eq!(a.entries()[0].1, 3);
        assert_eq!(a.duplicates(), 1);
    }

    #[test]
    fn canonical_order_is_latency_then_energy_then_accuracy() {
        let mut ar = ParetoArchive::new();
        ar.offer(pt(10.0, 9.0, 0.80), 0u32);
        ar.offer(pt(5.0, 2.0, 0.70), 1);
        ar.offer(pt(5.0, 1.0, 0.60), 2);
        let pts: Vec<_> = ar.entries().iter().map(|(p, _)| *p).collect();
        assert_eq!(
            pts,
            vec![pt(5.0, 1.0, 0.60), pt(5.0, 2.0, 0.70), pt(10.0, 9.0, 0.80)]
        );
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn non_finite_points_are_rejected() {
        let mut ar = ParetoArchive::new();
        ar.offer(pt(f64::NAN, 1.0, 0.5), 0u32);
    }
}

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use pruneperf_backends::ConvBackend;
use pruneperf_models::Network;
use pruneperf_profiler::LayerProfiler;

use crate::accuracy::AccuracyModel;
use crate::{pareto_front, Staircase};

/// A concrete pruning decision for a whole network: how many channels each
/// layer keeps, and the resulting (estimated) latency and accuracy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PruningPlan {
    policy: String,
    backend: String,
    device: String,
    network: String,
    kept: HashMap<String, usize>,
    latency_ms: f64,
    energy_mj: f64,
    accuracy: f64,
}

impl PruningPlan {
    /// Assembles a plan from already-measured parts. Crate-internal: only
    /// the pruners and the whole-network search construct plans, and both
    /// are required to have measured `(latency, energy, accuracy)` through
    /// the same profiler paths the accessors document.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        policy: &str,
        backend: &str,
        device: &str,
        network: &str,
        kept: HashMap<String, usize>,
        latency_ms: f64,
        energy_mj: f64,
        accuracy: f64,
    ) -> Self {
        PruningPlan {
            policy: policy.to_string(),
            backend: backend.to_string(),
            device: device.to_string(),
            network: network.to_string(),
            kept,
            latency_ms,
            energy_mj,
            accuracy,
        }
    }

    /// Policy that produced the plan (`"performance-aware"` / `"uninstructed"`).
    pub fn policy(&self) -> &str {
        &self.policy
    }

    /// Backend the plan was profiled with.
    pub fn backend(&self) -> &str {
        &self.backend
    }

    /// Device the plan was profiled on.
    pub fn device(&self) -> &str {
        &self.device
    }

    /// Network the plan applies to.
    pub fn network(&self) -> &str {
        &self.network
    }

    /// Kept channel count per layer label.
    pub fn kept_channels(&self) -> &HashMap<String, usize> {
        &self.kept
    }

    /// Sum of per-layer median latencies (unique layers, batch 1), ms.
    pub fn latency_ms(&self) -> f64 {
        self.latency_ms
    }

    /// Sum of per-layer modelled energies, mJ.
    pub fn energy_mj(&self) -> f64 {
        self.energy_mj
    }

    /// Estimated accuracy under the surrogate model.
    pub fn accuracy(&self) -> f64 {
        self.accuracy
    }

    /// Kept channels for one layer.
    pub fn kept_for(&self, label: &str) -> Option<usize> {
        self.kept.get(label).copied()
    }
}

impl fmt::Display for PruningPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} plan for {} ({} on {}): {:.2} ms, accuracy {:.4}",
            self.policy, self.network, self.backend, self.device, self.latency_ms, self.accuracy
        )
    }
}

/// Measures the summed latency and energy of a per-layer keep map.
fn plan_cost(
    profiler: &LayerProfiler,
    backend: &dyn ConvBackend,
    network: &Network,
    kept: &HashMap<String, usize>,
) -> (f64, f64) {
    network
        .layers()
        .iter()
        .map(|l| {
            let c = kept.get(l.label()).copied().unwrap_or_else(|| l.c_out());
            // lint: allow(unwrap) — kept counts never exceed the catalog c_out
            let layer = l.with_c_out(c).expect("keep count validated");
            (
                profiler.measure(backend, &layer).median_ms(),
                profiler.energy_mj(backend, &layer),
            )
        })
        .fold((0.0, 0.0), |(ms, mj), (m, j)| (ms + m, mj + j))
}

/// The paper's proposal (§V): profile each layer's staircase on the target
/// device, restrict pruning to the **optimal points** (right step edges),
/// and couple the choice with the accuracy model to meet a latency budget
/// at the least accuracy cost.
///
/// ```
/// use pruneperf_backends::Cudnn;
/// use pruneperf_core::{accuracy::AccuracyModel, PerfAwarePruner};
/// use pruneperf_gpusim::Device;
/// use pruneperf_models::alexnet;
/// use pruneperf_profiler::LayerProfiler;
///
/// let device = Device::jetson_tx2();
/// let network = alexnet();
/// let profiler = LayerProfiler::noiseless(&device);
/// let accuracy = AccuracyModel::for_network(&network);
/// let pruner = PerfAwarePruner::new(&profiler, &accuracy);
/// let plan = pruner.prune_to_latency(&Cudnn::new(), &network, 0.9);
/// assert!(plan.latency_ms() > 0.0);
/// assert!(plan.accuracy() <= accuracy.base_accuracy());
/// ```
#[derive(Debug, Clone)]
pub struct PerfAwarePruner<'a> {
    profiler: &'a LayerProfiler,
    accuracy: &'a AccuracyModel,
}

impl<'a> PerfAwarePruner<'a> {
    /// Creates a pruner bound to a profiler (device) and accuracy model.
    pub fn new(profiler: &'a LayerProfiler, accuracy: &'a AccuracyModel) -> Self {
        PerfAwarePruner { profiler, accuracy }
    }

    /// The pruning candidates for one layer: channel counts on the right
    /// edges of the profiled staircase (ascending).
    pub fn candidates_for(
        &self,
        backend: &dyn ConvBackend,
        layer: &pruneperf_models::ConvLayerSpec,
    ) -> Vec<(usize, f64)> {
        let curve = self
            .profiler
            .latency_curve(backend, layer, 1..=layer.c_out());
        Staircase::detect(&curve)
            .optimal_points()
            .iter()
            .map(|p| (p.channels, p.ms))
            .collect()
    }

    /// Prunes `network` until its summed layer latency is at most
    /// `budget_fraction` of the unpruned latency, spending as little
    /// accuracy as possible (greedy best latency-saved-per-accuracy-lost).
    ///
    /// # Panics
    ///
    /// Panics if `budget_fraction` is not in `(0, 1]`.
    pub fn prune_to_latency(
        &self,
        backend: &dyn ConvBackend,
        network: &Network,
        budget_fraction: f64,
    ) -> PruningPlan {
        assert!(
            budget_fraction > 0.0 && budget_fraction <= 1.0,
            "budget fraction must be in (0, 1]"
        );
        // Per-layer candidate ladders (ascending channel counts).
        let ladders: HashMap<String, Vec<(usize, f64)>> = network
            .layers()
            .iter()
            .map(|l| (l.label().to_string(), self.candidates_for(backend, l)))
            .collect();

        let mut kept: HashMap<String, usize> = network
            .layers()
            .iter()
            .map(|l| (l.label().to_string(), l.c_out()))
            .collect();
        let mut per_layer_ms: HashMap<String, f64> = network
            .layers()
            .iter()
            .map(|l| {
                (
                    l.label().to_string(),
                    self.profiler.measure(backend, l).median_ms(),
                )
            })
            .collect();
        // Sum and search in catalog order, not hash order: float sums are
        // order-sensitive and the greedy's `>` tie-break keeps the first
        // candidate seen, so hash-order iteration would vary across runs.
        let total0: f64 = network
            .layers()
            .iter()
            .map(|l| per_layer_ms[l.label()])
            .sum();
        let budget = total0 * budget_fraction;
        let mut total = total0;
        let mut acc = self.accuracy.accuracy_with(&kept);

        while total > budget {
            // Best next move: largest latency saved per accuracy lost.
            let mut best: Option<(String, usize, f64, f64, f64)> = None; // label, c, ms, d_lat, d_acc
            for layer in network.layers() {
                let label = layer.label();
                let ladder = &ladders[label];
                let cur_c = kept[label];
                let cur_ms = per_layer_ms[label];
                // Next candidate strictly below the current count that saves time.
                let next = ladder
                    .iter()
                    .rev()
                    .find(|&&(c, ms)| c < cur_c && ms < cur_ms);
                if let Some(&(c, ms)) = next {
                    let mut trial = kept.clone();
                    trial.insert(label.to_string(), c);
                    let new_acc = self.accuracy.accuracy_with(&trial);
                    let d_lat = cur_ms - ms;
                    let d_acc = (acc - new_acc).max(1e-9);
                    let score = d_lat / d_acc;
                    if best.as_ref().is_none_or(|b| score > b.3 / b.4) {
                        best = Some((label.to_string(), c, ms, d_lat, d_acc));
                    }
                }
            }
            let Some((label, c, ms, _, _)) = best else {
                break; // no further beneficial moves
            };
            total -= per_layer_ms[&label] - ms;
            per_layer_ms.insert(label.clone(), ms);
            kept.insert(label.clone(), c);
            acc = self.accuracy.accuracy_with(&kept);
        }

        let (_, energy_mj) = plan_cost(self.profiler, backend, network, &kept);
        PruningPlan {
            policy: "performance-aware".into(),
            backend: backend.name().to_string(),
            device: self.profiler.device().name().to_string(),
            network: network.name().to_string(),
            latency_ms: total,
            energy_mj,
            accuracy: acc,
            kept,
        }
    }

    /// Energy-aware variant of [`PerfAwarePruner::prune_to_latency`]: same
    /// staircase-derived candidates, but the greedy trades accuracy for
    /// *energy* until the plan's energy is at most `budget_fraction` of the
    /// unpruned network's. The paper motivates embedded GPUs by “FLOPS per
    /// watt” (§I); this is the natural extension of the §V loop.
    ///
    /// # Panics
    ///
    /// Panics if `budget_fraction` is not in `(0, 1]`.
    pub fn prune_to_energy(
        &self,
        backend: &dyn ConvBackend,
        network: &Network,
        budget_fraction: f64,
    ) -> PruningPlan {
        assert!(
            budget_fraction > 0.0 && budget_fraction <= 1.0,
            "budget fraction must be in (0, 1]"
        );
        let ladders: HashMap<String, Vec<(usize, f64)>> = network
            .layers()
            .iter()
            .map(|l| (l.label().to_string(), self.candidates_for(backend, l)))
            .collect();
        let mut kept: HashMap<String, usize> = network
            .layers()
            .iter()
            .map(|l| (l.label().to_string(), l.c_out()))
            .collect();
        let mut per_layer_mj: HashMap<String, f64> = network
            .layers()
            .iter()
            .map(|l| (l.label().to_string(), self.profiler.energy_mj(backend, l)))
            .collect();
        // Catalog-order sum and search, as in `prune_to_latency`: hash-order
        // iteration would make the float total and greedy tie-breaks vary
        // across runs.
        let total0: f64 = network
            .layers()
            .iter()
            .map(|l| per_layer_mj[l.label()])
            .sum();
        let budget = total0 * budget_fraction;
        let mut total = total0;
        let mut acc = self.accuracy.accuracy_with(&kept);

        while total > budget {
            let mut best: Option<(String, usize, f64, f64, f64)> = None;
            for layer in network.layers() {
                let label = layer.label();
                let ladder = &ladders[label];
                let cur_c = kept[label];
                let cur_mj = per_layer_mj[label];
                let next = ladder.iter().rev().find_map(|&(c, _)| {
                    if c >= cur_c {
                        return None;
                    }
                    // lint: allow(unwrap) — ladder counts come from 1..=c_out
                    let pruned = layer.with_c_out(c).expect("ladder in range");
                    let mj = self.profiler.energy_mj(backend, &pruned);
                    (mj < cur_mj).then_some((c, mj))
                });
                if let Some((c, mj)) = next {
                    let mut trial = kept.clone();
                    trial.insert(label.to_string(), c);
                    let new_acc = self.accuracy.accuracy_with(&trial);
                    let d_energy = cur_mj - mj;
                    let d_acc = (acc - new_acc).max(1e-9);
                    if best.as_ref().is_none_or(|b| d_energy / d_acc > b.3 / b.4) {
                        best = Some((label.to_string(), c, mj, d_energy, d_acc));
                    }
                }
            }
            let Some((label, c, mj, _, _)) = best else {
                break;
            };
            total -= per_layer_mj[&label] - mj;
            per_layer_mj.insert(label.clone(), mj);
            kept.insert(label.clone(), c);
            acc = self.accuracy.accuracy_with(&kept);
        }

        let (latency_ms, energy_mj) = plan_cost(self.profiler, backend, network, &kept);
        PruningPlan {
            policy: "energy-aware".into(),
            backend: backend.name().to_string(),
            device: self.profiler.device().name().to_string(),
            network: network.name().to_string(),
            latency_ms,
            energy_mj,
            accuracy: acc,
            kept,
        }
    }

    /// Plans at several latency budgets, reduced to the Pareto front over
    /// (latency, accuracy) — the search-space reduction of §V (“by
    /// profiling, we can reduce the search space to the ones with superior
    /// speedup to test for accuracy”).
    pub fn pareto_plans(
        &self,
        backend: &dyn ConvBackend,
        network: &Network,
        budget_fractions: &[f64],
    ) -> Vec<PruningPlan> {
        let plans: Vec<PruningPlan> = budget_fractions
            .iter()
            .map(|&f| self.prune_to_latency(backend, network, f))
            .collect();
        let metric: Vec<(f64, f64)> = plans
            .iter()
            .map(|p| (p.latency_ms(), p.accuracy()))
            .collect();
        pareto_front(&metric)
            .into_iter()
            .map(|i| plans[i].clone())
            .collect()
    }
}

/// The status-quo baseline (§I): pick a pruning distance from accuracy
/// considerations alone, “agnostic to target devices, expecting that having
/// a smaller number of network parameters will lead to faster inference”.
#[derive(Debug, Clone)]
pub struct UninstructedPruner<'a> {
    profiler: &'a LayerProfiler,
    accuracy: &'a AccuracyModel,
}

impl<'a> UninstructedPruner<'a> {
    /// Creates the baseline pruner.
    pub fn new(profiler: &'a LayerProfiler, accuracy: &'a AccuracyModel) -> Self {
        UninstructedPruner { profiler, accuracy }
    }

    /// Prunes every layer by the same channel distance (layers narrower
    /// than the distance are left unpruned), ignoring the device entirely.
    pub fn prune_by_distance(
        &self,
        backend: &dyn ConvBackend,
        network: &Network,
        distance: usize,
    ) -> PruningPlan {
        let kept: HashMap<String, usize> = network
            .layers()
            .iter()
            .map(|l| {
                let c = if l.c_out() > distance {
                    l.c_out() - distance
                } else {
                    l.c_out()
                };
                (l.label().to_string(), c)
            })
            .collect();
        let (latency_ms, energy_mj) = plan_cost(self.profiler, backend, network, &kept);
        let accuracy = self.accuracy.accuracy_with(&kept);
        PruningPlan {
            policy: "uninstructed".into(),
            backend: backend.name().to_string(),
            device: self.profiler.device().name().to_string(),
            network: network.name().to_string(),
            kept,
            latency_ms,
            energy_mj,
            accuracy,
        }
    }

    /// Prunes every layer to the same *fraction* of its channels.
    ///
    /// # Panics
    ///
    /// Panics if `keep_fraction` is not in `(0, 1]`.
    pub fn prune_to_fraction(
        &self,
        backend: &dyn ConvBackend,
        network: &Network,
        keep_fraction: f64,
    ) -> PruningPlan {
        assert!(
            keep_fraction > 0.0 && keep_fraction <= 1.0,
            "keep fraction must be in (0, 1]"
        );
        let kept: HashMap<String, usize> = network
            .layers()
            .iter()
            .map(|l| {
                let c = ((l.c_out() as f64 * keep_fraction).round() as usize).max(1);
                (l.label().to_string(), c)
            })
            .collect();
        let (latency_ms, energy_mj) = plan_cost(self.profiler, backend, network, &kept);
        let accuracy = self.accuracy.accuracy_with(&kept);
        PruningPlan {
            policy: "uninstructed".into(),
            backend: backend.name().to_string(),
            device: self.profiler.device().name().to_string(),
            network: network.name().to_string(),
            kept,
            latency_ms,
            energy_mj,
            accuracy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::tiny_net;
    use pruneperf_backends::{AclDirect, AclGemm};
    use pruneperf_gpusim::Device;

    fn setup(device: &Device) -> (LayerProfiler, AccuracyModel) {
        crate::testkit::noiseless_setup(&tiny_net(), device)
    }

    #[test]
    fn candidates_avoid_split_sizes() {
        let d = Device::mali_g72_hikey970();
        let (p, a) = setup(&d);
        let pruner = PerfAwarePruner::new(&p, &a);
        let layer = tiny_net().layer("T.L1").unwrap().clone();
        let cands = pruner.candidates_for(&AclGemm::new(), &layer);
        assert!(!cands.is_empty());
        for (c, _) in &cands {
            let c4 = c.div_ceil(4) * 4;
            assert_eq!(c4 % 8, 0, "candidate {c} lies on the slow staircase");
        }
    }

    #[test]
    fn budget_is_met_and_accuracy_traded() {
        let d = Device::mali_g72_hikey970();
        let (p, a) = setup(&d);
        let pruner = PerfAwarePruner::new(&p, &a);
        let net = tiny_net();
        let plan = pruner.prune_to_latency(&AclGemm::new(), &net, 0.7);
        let full = UninstructedPruner::new(&p, &a).prune_by_distance(&AclGemm::new(), &net, 0);
        assert!(
            plan.latency_ms() <= full.latency_ms() * 0.7 * 1.001,
            "budget missed: {} vs {}",
            plan.latency_ms(),
            full.latency_ms() * 0.7
        );
        assert!(plan.accuracy() < a.base_accuracy());
        assert!(
            plan.accuracy() > 0.5,
            "accuracy collapsed: {}",
            plan.accuracy()
        );
        assert_eq!(plan.policy(), "performance-aware");
    }

    #[test]
    fn trivial_budget_means_no_pruning() {
        let d = Device::mali_g72_hikey970();
        let (p, a) = setup(&d);
        let pruner = PerfAwarePruner::new(&p, &a);
        let plan = pruner.prune_to_latency(&AclGemm::new(), &tiny_net(), 1.0);
        for l in tiny_net().layers() {
            assert_eq!(plan.kept_for(l.label()), Some(l.c_out()));
        }
        assert!((plan.accuracy() - a.base_accuracy()).abs() < 1e-12);
    }

    /// The paper's core claim: uninstructed pruning can be *slower* than
    /// the unpruned network, while the performance-aware plan at equal or
    /// better accuracy is faster.
    #[test]
    fn uninstructed_can_backfire_perf_aware_does_not() {
        let d = Device::mali_g72_hikey970();
        let (p, a) = setup(&d);
        let backend = AclDirect::new();
        let net = tiny_net();
        let uninstructed = UninstructedPruner::new(&p, &a);
        let t_full = uninstructed
            .prune_by_distance(&backend, &net, 0)
            .latency_ms();
        // Pruning one channel everywhere: odd counts, slow level.
        let bad = uninstructed.prune_by_distance(&backend, &net, 1);
        assert!(
            bad.latency_ms() > t_full,
            "uninstructed prune-by-1 should backfire: {} vs {}",
            bad.latency_ms(),
            t_full
        );
        // The perf-aware pruner never selects a plan slower than unpruned.
        let pruner = PerfAwarePruner::new(&p, &a);
        let good = pruner.prune_to_latency(&backend, &net, 0.9);
        assert!(good.latency_ms() <= t_full);
    }

    #[test]
    fn pareto_plans_are_a_front() {
        let d = Device::mali_g72_hikey970();
        let (p, a) = setup(&d);
        let pruner = PerfAwarePruner::new(&p, &a);
        let plans = pruner.pareto_plans(&AclGemm::new(), &tiny_net(), &[1.0, 0.8, 0.6, 0.4]);
        assert!(!plans.is_empty());
        // Front sorted by latency, accuracy increasing with latency.
        for w in plans.windows(2) {
            assert!(w[0].latency_ms() <= w[1].latency_ms());
            assert!(w[0].accuracy() <= w[1].accuracy() + 1e-12);
        }
    }

    #[test]
    fn uninstructed_fraction_keeps_at_least_one_channel() {
        let d = Device::mali_g72_hikey970();
        let (p, a) = setup(&d);
        let u = UninstructedPruner::new(&p, &a);
        let plan = u.prune_to_fraction(&AclGemm::new(), &tiny_net(), 0.01);
        for &c in plan.kept_channels().values() {
            assert!(c >= 1);
        }
    }

    #[test]
    #[should_panic(expected = "budget fraction")]
    fn zero_budget_rejected() {
        let d = Device::mali_g72_hikey970();
        let (p, a) = setup(&d);
        let _ = PerfAwarePruner::new(&p, &a).prune_to_latency(&AclGemm::new(), &tiny_net(), 0.0);
    }

    #[test]
    fn plans_carry_energy() {
        let d = Device::mali_g72_hikey970();
        let (p, a) = setup(&d);
        let full =
            UninstructedPruner::new(&p, &a).prune_by_distance(&AclGemm::new(), &tiny_net(), 0);
        assert!(full.energy_mj() > 0.0);
        let pruned =
            PerfAwarePruner::new(&p, &a).prune_to_latency(&AclGemm::new(), &tiny_net(), 0.7);
        assert!(
            pruned.energy_mj() < full.energy_mj(),
            "pruning should save energy: {} vs {}",
            pruned.energy_mj(),
            full.energy_mj()
        );
    }

    #[test]
    fn energy_budget_is_met() {
        let d = Device::mali_g72_hikey970();
        let (p, a) = setup(&d);
        let pruner = PerfAwarePruner::new(&p, &a);
        let backend = AclGemm::new();
        let full = UninstructedPruner::new(&p, &a).prune_by_distance(&backend, &tiny_net(), 0);
        let plan = pruner.prune_to_energy(&backend, &tiny_net(), 0.7);
        assert_eq!(plan.policy(), "energy-aware");
        assert!(
            plan.energy_mj() <= full.energy_mj() * 0.7 * 1.001,
            "energy budget missed: {} vs {}",
            plan.energy_mj(),
            full.energy_mj() * 0.7
        );
        assert!(plan.accuracy() > 0.5);
    }

    #[test]
    fn energy_and_latency_objectives_agree_directionally() {
        // Both objectives should prune *something* under a 0.8 budget, and
        // both plans should be cheaper than unpruned on both axes.
        let d = Device::mali_g72_hikey970();
        let (p, a) = setup(&d);
        let pruner = PerfAwarePruner::new(&p, &a);
        let backend = AclGemm::new();
        let full = UninstructedPruner::new(&p, &a).prune_by_distance(&backend, &tiny_net(), 0);
        for plan in [
            pruner.prune_to_latency(&backend, &tiny_net(), 0.8),
            pruner.prune_to_energy(&backend, &tiny_net(), 0.8),
        ] {
            assert!(plan.latency_ms() < full.latency_ms(), "{}", plan.policy());
            assert!(plan.energy_mj() < full.energy_mj(), "{}", plan.policy());
        }
    }

    #[test]
    fn display_mentions_policy() {
        let d = Device::mali_g72_hikey970();
        let (p, a) = setup(&d);
        let plan =
            UninstructedPruner::new(&p, &a).prune_by_distance(&AclGemm::new(), &tiny_net(), 0);
        assert!(plan.to_string().contains("uninstructed"));
    }
}

//! Per-layer sensitivity analysis: how latency and accuracy respond to
//! pruning each layer in isolation.
//!
//! The classic first step of any pruning campaign — and, with the
//! staircase in the loop, the place where the paper's warning materializes:
//! two layers with identical accuracy sensitivity can have wildly different
//! *latency* responses depending on where their step edges fall.

use std::fmt;

use pruneperf_backends::ConvBackend;
use pruneperf_models::Network;
use pruneperf_profiler::LayerProfiler;
use serde::{Deserialize, Serialize};

use crate::accuracy::AccuracyModel;

/// One sampled operating point of a layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensitivityPoint {
    /// Channels kept.
    pub kept: usize,
    /// Layer latency at this count, ms.
    pub ms: f64,
    /// Network accuracy when only this layer is pruned to `kept`.
    pub accuracy: f64,
}

/// A layer's sensitivity profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerSensitivity {
    /// Layer label.
    pub label: String,
    /// Sampled points, descending kept-channel order.
    pub points: Vec<SensitivityPoint>,
}

impl LayerSensitivity {
    /// The largest latency speedup available at an accuracy loss of at most
    /// `max_loss` (absolute), relative to the unpruned point.
    pub fn best_speedup_within_loss(&self, max_loss: f64) -> f64 {
        let full = &self.points[0];
        self.points
            .iter()
            .filter(|p| full.accuracy - p.accuracy <= max_loss)
            .map(|p| full.ms / p.ms)
            .fold(1.0, f64::max)
    }
}

impl fmt::Display for LayerSensitivity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.label)?;
        for p in &self.points {
            writeln!(
                f,
                "  keep {:>5}  {:>9.3} ms  acc {:.4}",
                p.kept, p.ms, p.accuracy
            )?;
        }
        Ok(())
    }
}

/// Samples every layer of `network` at the given keep fractions.
///
/// Fractions are clamped to valid channel counts; the unpruned point is
/// always included first.
pub fn sensitivity_analysis(
    profiler: &LayerProfiler,
    accuracy: &AccuracyModel,
    backend: &dyn ConvBackend,
    network: &Network,
    keep_fractions: &[f64],
) -> Vec<LayerSensitivity> {
    network
        .layers()
        .iter()
        .map(|layer| {
            let mut counts: Vec<usize> = vec![layer.c_out()];
            for &f in keep_fractions {
                let c = ((layer.c_out() as f64 * f).round() as usize).clamp(1, layer.c_out());
                if !counts.contains(&c) {
                    counts.push(c);
                }
            }
            counts.sort_unstable_by(|a, b| b.cmp(a));
            let points = counts
                .into_iter()
                .filter_map(|c| {
                    let pruned = layer.with_c_out(c).ok()?;
                    Some(SensitivityPoint {
                        kept: c,
                        ms: profiler.measure(backend, &pruned).median_ms(),
                        accuracy: accuracy.accuracy_with_layer(layer.label(), c),
                    })
                })
                .collect();
            LayerSensitivity {
                label: layer.label().to_string(),
                points,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pruneperf_backends::Cudnn;
    use pruneperf_gpusim::Device;
    use pruneperf_models::alexnet;

    fn analysis() -> Vec<LayerSensitivity> {
        let d = Device::jetson_tx2();
        let p = LayerProfiler::noiseless(&d);
        let net = alexnet();
        let acc = AccuracyModel::for_network(&net);
        sensitivity_analysis(&p, &acc, &Cudnn::new(), &net, &[0.75, 0.5, 0.25])
    }

    #[test]
    fn one_profile_per_layer_with_unpruned_first() {
        let s = analysis();
        assert_eq!(s.len(), 5);
        for layer in &s {
            assert!(layer.points.len() >= 3, "{}", layer.label);
            // Descending kept order; first point is unpruned.
            assert!(layer.points.windows(2).all(|w| w[0].kept > w[1].kept));
        }
        assert_eq!(s[0].points[0].kept, 64);
    }

    #[test]
    fn accuracy_is_monotone_in_kept() {
        for layer in analysis() {
            for w in layer.points.windows(2) {
                assert!(
                    w[0].accuracy >= w[1].accuracy,
                    "{}: accuracy not monotone",
                    layer.label
                );
            }
        }
    }

    #[test]
    fn best_speedup_within_zero_loss_is_at_least_one() {
        for layer in analysis() {
            let s = layer.best_speedup_within_loss(0.0);
            assert!(s >= 1.0, "{}: {s}", layer.label);
            // Allowing more loss never reduces the achievable speedup.
            assert!(layer.best_speedup_within_loss(0.05) >= s);
        }
    }

    #[test]
    fn display_lists_points() {
        let s = analysis();
        let text = s[0].to_string();
        assert!(text.contains("keep"), "{text}");
        assert!(text.contains("acc"), "{text}");
    }

    #[test]
    fn duplicate_fractions_are_deduped() {
        let d = Device::jetson_tx2();
        let p = LayerProfiler::noiseless(&d);
        let net = alexnet();
        let acc = AccuracyModel::for_network(&net);
        let s = sensitivity_analysis(&p, &acc, &Cudnn::new(), &net, &[1.0, 1.0, 0.5, 0.5]);
        // 1.0 duplicates the unpruned point; 0.5 sampled once.
        assert_eq!(s[0].points.len(), 2);
    }
}

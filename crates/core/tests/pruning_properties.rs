//! Property-based invariants of the heatmaps, accuracy surrogate and the
//! pruning loop, driven over randomized layer shapes and budgets.

use std::collections::HashMap;

use proptest::prelude::*;
use pruneperf_backends::{AclGemm, Cudnn};
use pruneperf_core::accuracy::AccuracyModel;
use pruneperf_core::{analysis, testkit, PerfAwarePruner, UninstructedPruner};
use pruneperf_gpusim::Device;
use pruneperf_models::Network;
use pruneperf_profiler::LayerProfiler;

fn network_strategy() -> impl Strategy<Value = Network> {
    proptest::collection::vec(
        (
            prop_oneof![Just(1usize), Just(3usize)],
            8usize..=28,  // spatial
            8usize..=64,  // c_in
            16usize..=96, // c_out
        ),
        1..4,
    )
    .prop_map(|layers| testkit::prop_network(&layers))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Heatmap cells really are cumulative maxima: cell(d) equals the max
    /// of the single-distance ratios re-measured independently.
    #[test]
    fn heatmap_cells_are_cumulative_maxima(net in network_strategy()) {
        let device = Device::jetson_tx2();
        let profiler = LayerProfiler::noiseless(&device);
        let backend = Cudnn::new();
        let distances = [1usize, 3, 7];
        let h = analysis::speedup_table(&profiler, &backend, &net, &distances);
        for layer in net.layers() {
            let t0 = profiler.measure(&backend, layer).median_ms();
            for &d in &distances {
                if d >= layer.c_out() {
                    prop_assert_eq!(h.cell_at(d, layer.label()), None);
                    continue;
                }
                let expect = (1..=d)
                    .map(|p| {
                        let t = profiler
                            .measure(&backend, &layer.pruned_by(p).expect("valid"))
                            .median_ms();
                        t0 / t
                    })
                    .fold(f64::NEG_INFINITY, f64::max);
                let got = h.cell_at(d, layer.label()).expect("cell present");
                prop_assert!((got - expect).abs() < 1e-9, "{}@{d}: {got} vs {expect}", layer.label());
            }
        }
    }

    /// Accuracy is monotone under element-wise-deeper pruning maps.
    #[test]
    fn accuracy_monotone_under_deeper_pruning(
        net in network_strategy(),
        fracs in proptest::collection::vec(0.3f64..1.0, 4),
    ) {
        let model = AccuracyModel::for_network(&net);
        let keep = |frac: f64| -> HashMap<String, usize> {
            net.layers()
                .iter()
                .map(|l| {
                    let c = ((l.c_out() as f64 * frac).ceil() as usize).clamp(1, l.c_out());
                    (l.label().to_string(), c)
                })
                .collect()
        };
        let mut sorted = fracs.clone();
        sorted.sort_by(f64::total_cmp);
        let mut prev = -1.0f64;
        for f in sorted {
            let acc = model.accuracy_with(&keep(f));
            prop_assert!(acc + 1e-12 >= prev, "acc {acc} < {prev} at frac {f}");
            prev = acc;
        }
    }

    /// The perf-aware plan always stays within the unpruned latency and
    /// never keeps more channels than the original layer.
    #[test]
    fn plans_are_always_sane(net in network_strategy(), budget in 0.5f64..=1.0) {
        let device = Device::mali_g72_hikey970();
        let profiler = LayerProfiler::noiseless(&device);
        let model = AccuracyModel::for_network(&net);
        let backend = AclGemm::new();
        let plan = PerfAwarePruner::new(&profiler, &model)
            .prune_to_latency(&backend, &net, budget);
        let full = UninstructedPruner::new(&profiler, &model)
            .prune_by_distance(&backend, &net, 0);
        prop_assert!(plan.latency_ms() <= full.latency_ms() * 1.0001);
        // NOTE deliberately weaker than latency: a latency-optimal prune
        // can *increase* energy — padding a pruned channel count up to the
        // kernel's macro-tile executes more arithmetic than a smaller split
        // configuration (e.g. 24 channels padded to 32 columns vs 25
        // channels split 16+12). `prune_to_energy` exists for energy
        // budgets; here we only require energy to stay within the padding
        // envelope of one macro-tile per layer.
        prop_assert!(plan.energy_mj() <= full.energy_mj() * 1.75 + 2.0);
        prop_assert!(plan.accuracy() <= model.base_accuracy() + 1e-12);
        for layer in net.layers() {
            let kept = plan.kept_for(layer.label()).expect("planned");
            prop_assert!(kept >= 1 && kept <= layer.c_out());
        }
    }
}

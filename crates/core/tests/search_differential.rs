//! Differential harness for the whole-network search (PR 10 satellite).
//!
//! On the exhaustively-enumerable `testkit::micro_net` fixture, for seeds
//! 1–5 on all four paper devices:
//!
//! 1. the beam front is a **subset of the true Pareto front** (every
//!    archived point is bitwise-identical to a point of the enumerated
//!    non-dominated set);
//! 2. every `exhaustive_prune_to_latency` optimum is **matched or
//!    dominated** by some beam-front plan;
//! 3. on `testkit::ragged_net` (built so coarse Mali staircase quanta
//!    trip one-layer-at-a-time trading) the beam front **strictly
//!    dominates the greedy** `prune_to_latency` plan in all three
//!    objectives with a genuine >0.1% latency margin on the two Mali
//!    devices, while greedy is exhaustively verified optimal on the two
//!    CUDA devices.
//!
//! Beam widths (and, for the beats-greedy fixture, budgets) are tuned per
//! device so the beam covers enough of each space; they are part of the
//! pinned fixture.

use pruneperf_backends::AclGemm;
use pruneperf_core::search::{
    evaluate_genomes, exhaustive_prune_to_latency, search, ParetoPoint, SearchAlgo, SearchConfig,
    SearchOutcome, SearchSpace,
};
use pruneperf_core::testkit;
use pruneperf_core::{PerfAwarePruner, PruningPlan};
use pruneperf_gpusim::Device;

const SEEDS: [u64; 5] = [1, 2, 3, 4, 5];
const ENUM_CAP: usize = 100_000;

/// `(device, beam width)` — width is part of the checked-in fixture.
fn devices_and_widths() -> Vec<(Device, usize)> {
    let mut all = Device::all_paper_devices().into_iter();
    let hikey = all.next().unwrap();
    let odroid = all.next().unwrap();
    let tx2 = all.next().unwrap();
    let nano = all.next().unwrap();
    vec![(hikey, 16), (odroid, 96), (tx2, 16), (nano, 24)]
}

fn point_of(plan: &PruningPlan) -> ParetoPoint {
    ParetoPoint {
        latency_ms: plan.latency_ms(),
        energy_mj: plan.energy_mj(),
        accuracy: plan.accuracy(),
    }
}

fn bits(p: &ParetoPoint) -> (u64, u64, u64) {
    (
        p.latency_ms.to_bits(),
        p.energy_mj.to_bits(),
        p.accuracy.to_bits(),
    )
}

/// The enumerated true Pareto front of the fixture space.
fn true_front(
    profiler: &pruneperf_profiler::LayerProfiler,
    accuracy: &pruneperf_core::accuracy::AccuracyModel,
    backend: &AclGemm,
    network: &pruneperf_models::Network,
    space: &SearchSpace,
) -> Vec<ParetoPoint> {
    let all = space.enumerate_within(ENUM_CAP);
    let pts = evaluate_genomes(profiler, accuracy, backend, network, space, &all, 8);
    pts.iter()
        .copied()
        .filter(|q| !pts.iter().any(|o| o.dominates(q)))
        .collect()
}

fn beam(
    profiler: &pruneperf_profiler::LayerProfiler,
    accuracy: &pruneperf_core::accuracy::AccuracyModel,
    backend: &AclGemm,
    network: &pruneperf_models::Network,
    seed: u64,
    width: usize,
) -> SearchOutcome {
    search(
        profiler,
        accuracy,
        backend,
        network,
        &SearchConfig {
            algo: SearchAlgo::Beam,
            seed,
            beam_width: width,
            generations: 12,
        },
    )
}

#[test]
fn beam_front_is_a_subset_of_the_true_pareto_front() {
    let net = testkit::micro_net();
    let backend = AclGemm::new();
    for (device, width) in devices_and_widths() {
        let (p, a) = testkit::noiseless_setup(&net, &device);
        let space = SearchSpace::build_for(&p, &a, &backend, &net);
        let truth = true_front(&p, &a, &backend, &net, &space);
        let truth_bits: Vec<(u64, u64, u64)> = truth.iter().map(bits).collect();
        for seed in SEEDS {
            let out = beam(&p, &a, &backend, &net, seed, width);
            assert!(out.archived > 0, "{}: empty front", device.name());
            for plan in &out.plans {
                let q = bits(&point_of(plan));
                assert!(
                    truth_bits.contains(&q),
                    "{} seed {seed}: beam plan {:?} not on the true front",
                    device.name(),
                    plan.kept_channels()
                );
            }
        }
    }
}

#[test]
fn exhaustive_optima_are_matched_or_dominated_by_the_beam_front() {
    let net = testkit::micro_net();
    let backend = AclGemm::new();
    for (device, width) in devices_and_widths() {
        let (p, a) = testkit::noiseless_setup(&net, &device);
        for seed in SEEDS {
            let out = beam(&p, &a, &backend, &net, seed, width);
            for budget in [0.9, 0.8, 0.7, 0.6] {
                let Some(exact) =
                    exhaustive_prune_to_latency(&p, &a, &backend, &net, budget, ENUM_CAP)
                else {
                    continue;
                };
                // The exact optimum's objective point: re-measure energy
                // through the same evaluator paths the beam uses.
                let space = SearchSpace::build_for(&p, &a, &backend, &net);
                let genome: Vec<usize> = (0..space.num_layers())
                    .map(|i| {
                        let want = exact.kept[space.label_of(i)];
                        space
                            .ladder(i)
                            .iter()
                            .position(|&(c, _)| c == want)
                            .expect("exact optimum picks ladder points")
                    })
                    .collect();
                let ex = evaluate_genomes(&p, &a, &backend, &net, &space, &[genome], 1)[0];
                let covered = out.plans.iter().any(|plan| {
                    let q = point_of(plan);
                    bits(&q) == bits(&ex) || q.dominates(&ex)
                });
                assert!(
                    covered,
                    "{} seed {seed} budget {budget}: exhaustive optimum not covered",
                    device.name()
                );
            }
        }
    }
}

/// `(device, greedy budget, beam width)` for the beats-greedy fixture.
/// Budgets are per-device because greedy's failure mode is budget-shaped:
/// its last one-layer trade overshoots where the device's staircase
/// quanta are coarse. On the CUDA devices the ladders are smooth and
/// greedy stays optimal at every probed budget — that contrast is pinned
/// below rather than hidden.
fn ragged_fixture() -> Vec<(Device, f64, usize)> {
    let mut all = Device::all_paper_devices().into_iter();
    let hikey = all.next().unwrap();
    let odroid = all.next().unwrap();
    let tx2 = all.next().unwrap();
    let nano = all.next().unwrap();
    vec![
        (hikey, 0.8, 16),
        (odroid, 0.6, 96),
        (tx2, 0.8, 16),
        (nano, 0.8, 24),
    ]
}

/// A beam plan "genuinely beats" greedy when it dominates in all three
/// objectives AND the latency win clears a 0.1% margin — summation-order
/// noise on an identical plan is ulps, never 0.1%.
const GENUINE_MARGIN: f64 = 0.999;

#[test]
fn beam_front_strictly_dominates_greedy_on_at_least_two_devices() {
    let net = testkit::ragged_net();
    let backend = AclGemm::new();
    let mut beaten: Vec<String> = Vec::new();
    for (device, budget, width) in ragged_fixture() {
        let (p, a) = testkit::noiseless_setup(&net, &device);
        let greedy = PerfAwarePruner::new(&p, &a).prune_to_latency(&backend, &net, budget);
        let gpt = point_of(&greedy);
        let mut beats_on_every_seed = true;
        for seed in SEEDS {
            let out = beam(&p, &a, &backend, &net, seed, width);
            let dominated = out.plans.iter().any(|plan| {
                let q = point_of(plan);
                q.dominates(&gpt) && q.latency_ms < gpt.latency_ms * GENUINE_MARGIN
            });
            if !dominated {
                beats_on_every_seed = false;
            }
        }
        if beats_on_every_seed {
            beaten.push(device.name().to_string());
        }
    }
    assert!(
        beaten.len() >= 2,
        "beam should strictly dominate greedy on ≥2 devices, got {beaten:?}"
    );
    // Pin the fixture's actual winners so a regression that flips one
    // device is visible, not silently absorbed by the ≥2 bound. The CUDA
    // devices are pinned as non-winners: greedy is provably optimal there
    // (see `greedy_is_optimal_on_the_cuda_devices`), so a "win" appearing
    // on them would mean the margin predicate broke.
    assert_eq!(
        beaten,
        vec![
            "HiKey 970 (Mali G72 MP12)".to_string(),
            "Odroid XU4 (Mali T628 MP6)".to_string()
        ],
        "beats-greedy winner set drifted"
    );
}

/// The flip side of the beats-greedy pin: on the CUDA devices the
/// enumerated space contains no plan that beats greedy's point by the
/// genuine margin at equal-or-better accuracy, so greedy is optimal there
/// and the beam's job is only to match it (covered by the exhaustive
/// test above).
#[test]
fn greedy_is_optimal_on_the_cuda_devices() {
    let net = testkit::ragged_net();
    let backend = AclGemm::new();
    for (device, budget, _) in ragged_fixture() {
        if !device.name().contains("Jetson") {
            continue;
        }
        let (p, a) = testkit::noiseless_setup(&net, &device);
        let greedy = PerfAwarePruner::new(&p, &a).prune_to_latency(&backend, &net, budget);
        let gpt = point_of(&greedy);
        let space = SearchSpace::build_for(&p, &a, &backend, &net);
        let all = space.enumerate_within(ENUM_CAP);
        let pts = evaluate_genomes(&p, &a, &backend, &net, &space, &all, 8);
        assert!(
            !pts.iter()
                .any(|q| q.accuracy >= gpt.accuracy
                    && q.latency_ms < gpt.latency_ms * GENUINE_MARGIN),
            "{}: greedy unexpectedly suboptimal — update the pinned winner set",
            device.name()
        );
    }
}

/// Evolve is heuristic; it must stay internally consistent (conservation,
/// non-dominated front, reproducibility) and its front must never contain
/// a point off the true front *when the point claims a true-front triple*…
/// concretely: every evolve front point must be non-dominated within the
/// full enumerated space OR dominated only by points the archive never saw.
/// We assert the cheap invariants here; subset is beam's contract.
#[test]
fn evolve_is_conserved_and_reproducible_on_all_devices() {
    let net = testkit::micro_net();
    let backend = AclGemm::new();
    for (device, width) in devices_and_widths() {
        let (p, a) = testkit::noiseless_setup(&net, &device);
        let cfg = SearchConfig {
            algo: SearchAlgo::Evolve,
            seed: 1,
            beam_width: width.min(24),
            generations: 10,
        };
        let once = search(&p, &a, &backend, &net, &cfg);
        let twice = search(&p, &a, &backend, &net, &cfg);
        assert_eq!(
            once.evaluated,
            once.archived as u64 + once.dominated + once.duplicates,
            "{}: conservation",
            device.name()
        );
        let key = |o: &SearchOutcome| -> Vec<(u64, u64, u64)> {
            o.plans.iter().map(|pl| bits(&point_of(pl))).collect()
        };
        assert_eq!(
            key(&once),
            key(&twice),
            "{}: reproducibility",
            device.name()
        );
        for (i, x) in once.plans.iter().enumerate() {
            for (j, y) in once.plans.iter().enumerate() {
                if i != j {
                    assert!(
                        !point_of(x).dominates(&point_of(y)),
                        "{}: evolve front self-domination",
                        device.name()
                    );
                }
            }
        }
    }
}

//! Property-based invariants of the staircase analysis, Pareto utilities
//! and heatmap construction.

use proptest::prelude::*;
use pruneperf_core::{pareto_front, Staircase};
use pruneperf_profiler::{CurvePoint, LatencyCurve, Measurement};

fn curve_strategy() -> impl Strategy<Value = LatencyCurve> {
    proptest::collection::vec(0.1f64..100.0, 2..120).prop_map(|ms| {
        let points = ms
            .into_iter()
            .enumerate()
            .map(|(i, v)| CurvePoint {
                channels: i + 1,
                measurement: Measurement::from_runs(vec![v]),
            })
            .collect();
        LatencyCurve::new("prop", "prop", "prop", points)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Steps partition the curve: contiguous, ordered, covering every point.
    #[test]
    fn steps_partition_the_curve(curve in curve_strategy()) {
        let staircase = Staircase::detect(&curve);
        let steps = staircase.steps();
        prop_assert!(!steps.is_empty());
        let (lo, hi) = curve.channel_range();
        prop_assert_eq!(steps.first().unwrap().from_channels, lo);
        prop_assert_eq!(steps.last().unwrap().to_channels, hi);
        for w in steps.windows(2) {
            prop_assert_eq!(w[0].to_channels + 1, w[1].from_channels);
        }
        for s in steps {
            prop_assert!(s.from_channels <= s.to_channels);
            prop_assert!(s.level_ms > 0.0);
        }
    }

    /// Optimal points are a true Pareto set: strictly increasing channels
    /// AND strictly decreasing-beyond-tolerance latency from right to left.
    #[test]
    fn optimal_points_are_pareto(curve in curve_strategy()) {
        let staircase = Staircase::detect(&curve);
        let pts = staircase.optimal_points();
        prop_assert!(!pts.is_empty());
        // The rightmost profiled point is always optimal.
        prop_assert_eq!(pts.last().unwrap().channels, curve.channel_range().1);
        for w in pts.windows(2) {
            prop_assert!(w[0].channels < w[1].channels);
            // Earlier points must be meaningfully faster than later ones.
            prop_assert!(w[0].ms < w[1].ms);
        }
        // No profiled point dominates an optimal point.
        for p in pts {
            for (c, ms) in curve.series() {
                if c > p.channels {
                    prop_assert!(
                        ms * 1.05 >= p.ms,
                        "({c}, {ms}) dominates optimal ({}, {})",
                        p.channels,
                        p.ms
                    );
                }
            }
        }
    }

    /// best_within_budget returns the most channels meeting the budget.
    #[test]
    fn budget_selection_is_maximal(curve in curve_strategy(), budget in 0.05f64..120.0) {
        let staircase = Staircase::detect(&curve);
        match staircase.best_within_budget(budget) {
            Some(best) => {
                prop_assert!(best.ms <= budget);
                for p in staircase.optimal_points() {
                    if p.ms <= budget {
                        prop_assert!(p.channels <= best.channels);
                    }
                }
            }
            None => {
                for p in staircase.optimal_points() {
                    prop_assert!(p.ms > budget);
                }
            }
        }
    }

    /// The Pareto front utility returns exactly the non-dominated set.
    #[test]
    fn pareto_front_is_exact(
        cands in proptest::collection::vec((0.1f64..100.0, 0.0f64..1.0), 0..40)
    ) {
        let front = pareto_front(&cands);
        // Everything on the front is non-dominated.
        for &i in &front {
            for (j, &(lat, acc)) in cands.iter().enumerate() {
                if i == j { continue; }
                let (fl, fa) = cands[i];
                let dominates = lat <= fl && acc >= fa && (lat < fl || acc > fa);
                prop_assert!(!dominates, "candidate {j} dominates front member {i}");
            }
        }
        // Everything off the front is dominated or a duplicate.
        for (j, &(lat, acc)) in cands.iter().enumerate() {
            if front.contains(&j) { continue; }
            let covered = cands.iter().enumerate().any(|(i, &(l, a))| {
                i != j && l <= lat && a >= acc
            });
            prop_assert!(covered, "candidate {j} ({lat}, {acc}) missing from front");
        }
        // Front is sorted by latency.
        for w in front.windows(2) {
            prop_assert!(cands[w[0]].0 <= cands[w[1]].0);
        }
    }
}

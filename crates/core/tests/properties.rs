//! Property-based invariants of the staircase analysis, Pareto utilities
//! (both the 2-D `pareto_front` and the 3-D `ParetoArchive`) and heatmap
//! construction.

use proptest::prelude::*;
use pruneperf_core::search::{ParetoArchive, ParetoPoint};
use pruneperf_core::{pareto_front, Staircase};
use pruneperf_profiler::{CurvePoint, LatencyCurve, Measurement};

/// Continuous objective triples — collisions essentially never happen.
fn point_strategy() -> impl Strategy<Value = (f64, f64, f64)> {
    (0.1f64..100.0, 0.1f64..50.0, 0.0f64..1.0)
}

/// Coarse grid triples — duplicates and dominations are plentiful, which
/// is what exercises the tie/conservation accounting.
fn grid_point_strategy() -> impl Strategy<Value = (f64, f64, f64)> {
    (0u8..5, 0u8..5, 0u8..5).prop_map(|(l, e, a)| (l as f64 + 1.0, e as f64 + 1.0, a as f64 / 4.0))
}

fn pt(t: (f64, f64, f64)) -> ParetoPoint {
    ParetoPoint {
        latency_ms: t.0,
        energy_mj: t.1,
        accuracy: t.2,
    }
}

/// Inserts `(payload, triple)` pairs and returns the archive.
fn archive_of(pairs: &[(usize, (f64, f64, f64))]) -> ParetoArchive<usize> {
    let mut archive = ParetoArchive::new();
    for &(payload, triple) in pairs {
        archive.offer(pt(triple), payload);
    }
    archive
}

fn entry_bits(archive: &ParetoArchive<usize>) -> Vec<(u64, u64, u64, usize)> {
    archive
        .entries()
        .iter()
        .map(|(p, t)| {
            (
                p.latency_ms.to_bits(),
                p.energy_mj.to_bits(),
                p.accuracy.to_bits(),
                *t,
            )
        })
        .collect()
}

/// Seeded Fisher–Yates via a splitmix-style hash (the vendored proptest
/// has no `prop_shuffle`).
fn shuffled<T: Clone>(items: &[T], seed: u64) -> Vec<T> {
    let mut out = items.to_vec();
    let mut state = seed;
    for i in (1..out.len()).rev() {
        state = state
            .wrapping_add(0x9e37_79b9_7f4a_7c15)
            .wrapping_mul(0xbf58_476d_1ce4_e5b9);
        out.swap(i, (state % (i as u64 + 1)) as usize);
    }
    out
}

fn curve_strategy() -> impl Strategy<Value = LatencyCurve> {
    proptest::collection::vec(0.1f64..100.0, 2..120).prop_map(|ms| {
        let points = ms
            .into_iter()
            .enumerate()
            .map(|(i, v)| CurvePoint {
                channels: i + 1,
                measurement: Measurement::from_runs(vec![v]),
            })
            .collect();
        LatencyCurve::new("prop", "prop", "prop", points)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Steps partition the curve: contiguous, ordered, covering every point.
    #[test]
    fn steps_partition_the_curve(curve in curve_strategy()) {
        let staircase = Staircase::detect(&curve);
        let steps = staircase.steps();
        prop_assert!(!steps.is_empty());
        let (lo, hi) = curve.channel_range();
        prop_assert_eq!(steps.first().unwrap().from_channels, lo);
        prop_assert_eq!(steps.last().unwrap().to_channels, hi);
        for w in steps.windows(2) {
            prop_assert_eq!(w[0].to_channels + 1, w[1].from_channels);
        }
        for s in steps {
            prop_assert!(s.from_channels <= s.to_channels);
            prop_assert!(s.level_ms > 0.0);
        }
    }

    /// Optimal points are a true Pareto set: strictly increasing channels
    /// AND strictly decreasing-beyond-tolerance latency from right to left.
    #[test]
    fn optimal_points_are_pareto(curve in curve_strategy()) {
        let staircase = Staircase::detect(&curve);
        let pts = staircase.optimal_points();
        prop_assert!(!pts.is_empty());
        // The rightmost profiled point is always optimal.
        prop_assert_eq!(pts.last().unwrap().channels, curve.channel_range().1);
        for w in pts.windows(2) {
            prop_assert!(w[0].channels < w[1].channels);
            // Earlier points must be meaningfully faster than later ones.
            prop_assert!(w[0].ms < w[1].ms);
        }
        // No profiled point dominates an optimal point.
        for p in pts {
            for (c, ms) in curve.series() {
                if c > p.channels {
                    prop_assert!(
                        ms * 1.05 >= p.ms,
                        "({c}, {ms}) dominates optimal ({}, {})",
                        p.channels,
                        p.ms
                    );
                }
            }
        }
    }

    /// best_within_budget returns the most channels meeting the budget.
    #[test]
    fn budget_selection_is_maximal(curve in curve_strategy(), budget in 0.05f64..120.0) {
        let staircase = Staircase::detect(&curve);
        match staircase.best_within_budget(budget) {
            Some(best) => {
                prop_assert!(best.ms <= budget);
                for p in staircase.optimal_points() {
                    if p.ms <= budget {
                        prop_assert!(p.channels <= best.channels);
                    }
                }
            }
            None => {
                for p in staircase.optimal_points() {
                    prop_assert!(p.ms > budget);
                }
            }
        }
    }

    /// The Pareto front utility returns exactly the non-dominated set.
    #[test]
    fn pareto_front_is_exact(
        cands in proptest::collection::vec((0.1f64..100.0, 0.0f64..1.0), 0..40)
    ) {
        let front = pareto_front(&cands);
        // Everything on the front is non-dominated.
        for &i in &front {
            for (j, &(lat, acc)) in cands.iter().enumerate() {
                if i == j { continue; }
                let (fl, fa) = cands[i];
                let dominates = lat <= fl && acc >= fa && (lat < fl || acc > fa);
                prop_assert!(!dominates, "candidate {j} dominates front member {i}");
            }
        }
        // Everything off the front is dominated or a duplicate.
        for (j, &(lat, acc)) in cands.iter().enumerate() {
            if front.contains(&j) { continue; }
            let covered = cands.iter().enumerate().any(|(i, &(l, a))| {
                i != j && l <= lat && a >= acc
            });
            prop_assert!(covered, "candidate {j} ({lat}, {acc}) missing from front");
        }
        // Front is sorted by latency.
        for w in front.windows(2) {
            prop_assert!(cands[w[0]].0 <= cands[w[1]].0);
        }
    }

    /// No archived point ever dominates another archived point.
    #[test]
    fn archive_front_is_mutually_nondominated(
        triples in proptest::collection::vec(grid_point_strategy(), 0..60)
    ) {
        let pairs: Vec<(usize, (f64, f64, f64))> =
            triples.into_iter().enumerate().collect();
        let archive = archive_of(&pairs);
        for (i, (p, _)) in archive.entries().iter().enumerate() {
            for (j, (q, _)) in archive.entries().iter().enumerate() {
                if i != j {
                    prop_assert!(!p.dominates(q), "entry {i} dominates entry {j}");
                }
            }
        }
    }

    /// Counter conservation: inserted == archived + dominated + duplicates.
    #[test]
    fn archive_counters_are_conserved(
        triples in proptest::collection::vec(grid_point_strategy(), 0..60)
    ) {
        let pairs: Vec<(usize, (f64, f64, f64))> =
            triples.into_iter().enumerate().collect();
        let archive = archive_of(&pairs);
        prop_assert_eq!(archive.inserted(), pairs.len() as u64);
        prop_assert_eq!(
            archive.inserted(),
            archive.len() as u64 + archive.dominated() + archive.duplicates()
        );
    }

    /// With continuous objective triples, bit-exact collisions never
    /// happen: the duplicate counter stays zero and conservation reduces
    /// to archived + dominated.
    #[test]
    fn archive_of_continuous_points_never_counts_duplicates(
        triples in proptest::collection::vec(point_strategy(), 0..60)
    ) {
        let pairs: Vec<(usize, (f64, f64, f64))> =
            triples.into_iter().enumerate().collect();
        let archive = archive_of(&pairs);
        prop_assert_eq!(archive.duplicates(), 0);
        prop_assert_eq!(
            archive.inserted(),
            archive.len() as u64 + archive.dominated()
        );
    }

    /// The final archive — points, payloads and their canonical order — is
    /// invariant under any permutation of the same insertions. (How a
    /// rejected point is *classified* may depend on order; the final state
    /// never does.)
    #[test]
    fn archive_is_permutation_invariant(
        triples in proptest::collection::vec(grid_point_strategy(), 0..40),
        seed in any::<u64>(),
    ) {
        let original: Vec<(usize, (f64, f64, f64))> =
            triples.into_iter().enumerate().collect();
        let permuted = shuffled(&original, seed);
        let a = archive_of(&original);
        let b = archive_of(&permuted);
        prop_assert_eq!(entry_bits(&a), entry_bits(&b));
        prop_assert_eq!(
            a.len() as u64 + a.dominated() + a.duplicates(),
            b.len() as u64 + b.dominated() + b.duplicates()
        );
    }

    /// Duplicate objective triples deterministically keep the smallest
    /// payload among everything offered with that triple.
    #[test]
    fn archive_duplicate_ties_keep_the_smallest_payload(
        triples in proptest::collection::vec(grid_point_strategy(), 1..40),
        seed in any::<u64>(),
    ) {
        // Offer every triple twice with distinct payloads, in a seeded
        // permutation.
        let doubled: Vec<(usize, (f64, f64, f64))> = triples
            .iter()
            .enumerate()
            .flat_map(|(i, &t)| [(2 * i + 1, t), (2 * i, t)])
            .collect();
        let pairs = shuffled(&doubled, seed);
        let archive = archive_of(&pairs);
        for (p, payload) in archive.entries() {
            let min = pairs
                .iter()
                .filter(|(_, t)| {
                    t.0.to_bits() == p.latency_ms.to_bits()
                        && t.1.to_bits() == p.energy_mj.to_bits()
                        && t.2.to_bits() == p.accuracy.to_bits()
                })
                .map(|(i, _)| *i)
                .min()
                .expect("archived point was offered");
            prop_assert_eq!(*payload, min);
        }
    }

    /// With energy held constant the 3-D archive front collapses to the
    /// 2-D `pareto_front` over (latency, accuracy).
    #[test]
    fn archive_agrees_with_pareto_front_in_two_dimensions(
        cands in proptest::collection::vec((0.1f64..100.0, 0.0f64..1.0), 0..40)
    ) {
        let mut archive = ParetoArchive::new();
        for (i, &(lat, acc)) in cands.iter().enumerate() {
            archive.offer(
                pt((lat, 1.0, acc)),
                i,
            );
        }
        let mut from_archive: Vec<(u64, u64)> = archive
            .entries()
            .iter()
            .map(|(p, _)| (p.latency_ms.to_bits(), p.accuracy.to_bits()))
            .collect();
        let mut from_front: Vec<(u64, u64)> = pareto_front(&cands)
            .into_iter()
            .map(|i| (cands[i].0.to_bits(), cands[i].1.to_bits()))
            .collect();
        from_archive.sort_unstable();
        from_archive.dedup();
        from_front.sort_unstable();
        from_front.dedup();
        prop_assert_eq!(from_archive, from_front);
    }
}

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::ConvLayerSpec;

/// A named collection of *unique* convolutional layer shapes.
///
/// Matches the paper's methodology: repeated shapes are profiled once, and
/// layers keep their original indices (hence the gaps in the label
/// sequence).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Network {
    name: String,
    layers: Vec<ConvLayerSpec>,
}

impl Network {
    /// Creates a network from its unique conv layers.
    ///
    /// # Panics
    ///
    /// Panics if two layers share a label — catalogs are static data and a
    /// duplicate label is a programming error.
    pub fn new(name: impl Into<String>, layers: Vec<ConvLayerSpec>) -> Self {
        let name = name.into();
        for (i, a) in layers.iter().enumerate() {
            // lint: allow(index) — i + 1 <= len because i comes from enumerate()
            for b in &layers[i + 1..] {
                // lint: allow(panic) — documented # Panics contract: catalogs are static data
                assert_ne!(a.label(), b.label(), "duplicate layer label in {name}");
            }
        }
        Network { name, layers }
    }

    /// Network name (`"ResNet-50"`, `"VGG-16"`, `"AlexNet"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The unique conv layers in network order.
    pub fn layers(&self) -> &[ConvLayerSpec] {
        &self.layers
    }

    /// Looks up a layer by its paper label.
    pub fn layer(&self, label: &str) -> Option<&ConvLayerSpec> {
        self.layers.iter().find(|l| l.label() == label)
    }

    /// Number of unique conv layers.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Total multiply–accumulates across the unique layers.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(ConvLayerSpec::macs).sum()
    }

    /// For *sequential* networks (VGG, AlexNet, MobileNetV1 — every layer
    /// feeds the next), rebuilds the network with the given kept channel
    /// counts **propagated across layers**: layer *i*'s output channel
    /// count becomes layer *i+1*'s input channel count, and depthwise
    /// layers follow their input. Layers absent from the map keep their
    /// original count.
    ///
    /// This models what deploying a pruned network actually does — the
    /// paper profiles layers in isolation (output channels only), which
    /// understates whole-network gains because shrinking one layer also
    /// shrinks its successor's `K` dimension.
    pub fn sequential_with_kept(&self, kept: &HashMap<String, usize>) -> Network {
        let mut layers = Vec::with_capacity(self.layers.len());
        let mut prev_out: Option<usize> = None;
        for layer in &self.layers {
            let c_in = prev_out.unwrap_or_else(|| layer.c_in());
            let (c_out, groups) = if layer.is_depthwise() {
                (c_in, c_in)
            } else {
                (
                    kept.get(layer.label())
                        .copied()
                        .unwrap_or_else(|| layer.c_out()),
                    layer.groups(),
                )
            };
            layers.push(ConvLayerSpec::new_grouped(
                layer.label(),
                layer.kernel(),
                layer.stride(),
                layer.pad(),
                c_in,
                c_out,
                layer.h_in(),
                layer.w_in(),
                groups,
            ));
            prev_out = Some(c_out);
        }
        Network {
            name: format!("{} (coupled prune)", self.name),
            layers,
        }
    }

    /// A copy of the network with every layer pruned by `distance` channels
    /// (layers with fewer channels than the distance are left unpruned, as
    /// in the paper's heatmaps where such cells are absent).
    pub fn pruned_by(&self, distance: usize) -> Network {
        let layers = self
            .layers
            .iter()
            .map(|l| l.pruned_by(distance).unwrap_or_else(|_| l.clone()))
            .collect();
        Network {
            name: format!("{} (prune={distance})", self.name),
            layers,
        }
    }
}

impl fmt::Display for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} unique conv layers)",
            self.name,
            self.layers.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Network {
        Network::new(
            "Tiny",
            vec![
                ConvLayerSpec::new("T.L0", 3, 1, 1, 3, 8, 8, 8),
                ConvLayerSpec::new("T.L1", 1, 1, 0, 8, 16, 8, 8),
            ],
        )
    }

    #[test]
    fn lookup_by_label() {
        let n = tiny();
        assert_eq!(n.layer("T.L1").unwrap().c_out(), 16);
        assert!(n.layer("T.L9").is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate layer label")]
    fn duplicate_labels_rejected() {
        let l = ConvLayerSpec::new("X", 1, 1, 0, 1, 1, 1, 1);
        let _ = Network::new("bad", vec![l.clone(), l]);
    }

    #[test]
    fn total_macs_is_sum() {
        let n = tiny();
        assert_eq!(n.total_macs(), n.layers()[0].macs() + n.layers()[1].macs());
    }

    #[test]
    fn pruned_by_keeps_small_layers() {
        let n = tiny().pruned_by(10);
        // T.L0 has 8 channels: distance 10 would empty it, left unpruned.
        assert_eq!(n.layer("T.L0").unwrap().c_out(), 8);
        assert_eq!(n.layer("T.L1").unwrap().c_out(), 6);
    }

    #[test]
    fn display_mentions_layer_count() {
        assert_eq!(tiny().to_string(), "Tiny (2 unique conv layers)");
    }

    #[test]
    fn sequential_propagation_updates_inputs() {
        let net = tiny();
        let mut kept = HashMap::new();
        kept.insert("T.L0".to_string(), 4usize);
        let coupled = net.sequential_with_kept(&kept);
        assert_eq!(coupled.layer("T.L0").unwrap().c_out(), 4);
        // T.L1's input follows T.L0's output.
        assert_eq!(coupled.layer("T.L1").unwrap().c_in(), 4);
        assert_eq!(coupled.layer("T.L1").unwrap().c_out(), 16);
    }

    #[test]
    fn sequential_propagation_compounds_macs() {
        let net = tiny();
        let mut kept = HashMap::new();
        kept.insert("T.L0".to_string(), 4usize);
        kept.insert("T.L1".to_string(), 8usize);
        let coupled = net.sequential_with_kept(&kept);
        // Halving both dimensions of T.L1 quarters its MACs.
        let original = net.layer("T.L1").unwrap().macs();
        let pruned = coupled.layer("T.L1").unwrap().macs();
        assert_eq!(pruned * 4, original);
    }

    #[test]
    fn depthwise_layers_follow_their_input() {
        use crate::mobilenet_v1;
        let net = mobilenet_v1();
        let mut kept = HashMap::new();
        kept.insert("MobileNet.L2".to_string(), 48usize); // pw 32->64 shrunk
        let coupled = net.sequential_with_kept(&kept);
        let dw = coupled.layer("MobileNet.L3").unwrap();
        assert!(dw.is_depthwise());
        assert_eq!(dw.c_in(), 48);
        assert_eq!(dw.c_out(), 48);
    }
}

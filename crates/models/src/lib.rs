//! Convolutional layer catalogs for the three networks the paper profiles.
//!
//! §III-B of Radu et al. (IISWC 2019) characterizes channel pruning on
//! **ResNet-50**, **VGG-16** and **AlexNet**. Only the *unique* convolutional
//! layer shapes are profiled (“where the convolutional layer shape is
//! repeated in the network, it is considered only once”), and layers are
//! referred to by index labels such as `ResNet.L16` that skip non-conv
//! layers (batch norm, pooling, …).
//!
//! The paper never tabulates the label→shape mapping, so this crate
//! reconstructs it from the figure and table evidence (see `DESIGN.md` §2):
//!
//! * `ResNet.L16` is a 3×3 convolution with 128 input channels over a 28×28
//!   feature map producing up to 128 channels — Tables I–IV report its
//!   im2col GEMM as `M = 784`, `K = 1152`.
//! * `ResNet.L14` has 512 filters (Figs 5, 7, 12, 20), `ResNet.L45` has
//!   2048 filters (Fig 15), and `ResNet.L0` is the 7×7 stem.
//! * 23 unique ResNet-50 shapes = stem + 4 (conv2 stage) + 6 × 3 (conv3–5
//!   stages, counting reduce / strided 3×3 / expand / projection /
//!   second-block reduce / second-block 3×3).
//!
//! # Example
//!
//! ```
//! use pruneperf_models::resnet50;
//!
//! let net = resnet50();
//! let l16 = net.layer("ResNet.L16").expect("catalog has L16");
//! assert_eq!((l16.kernel(), l16.c_in(), l16.c_out()), (3, 128, 128));
//! let (m, k, n) = l16.dims().gemm_mkn().expect("valid shape");
//! assert_eq!((m, k, n), (784, 1152, 128)); // exactly Tables I–IV
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assembly;
mod catalog;
mod layer;
mod network;
pub mod weights;

pub use catalog::{alexnet, mobilenet_v1, resnet50, vgg16};
pub use layer::ConvLayerSpec;
pub use network::Network;

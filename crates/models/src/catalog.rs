//! The three network catalogs, with the paper's layer labels.
//!
//! See the crate docs and `DESIGN.md` §2 for how the label→shape mapping was
//! reconstructed from the paper's figures and tables.

use crate::{ConvLayerSpec, Network};

/// Shorthand constructor for catalog entries.
fn l(
    label: &str,
    kernel: usize,
    stride: usize,
    pad: usize,
    c_in: usize,
    c_out: usize,
    hw_in: usize,
) -> ConvLayerSpec {
    ConvLayerSpec::new(label, kernel, stride, pad, c_in, c_out, hw_in, hw_in)
}

/// The 23 unique convolutional layer shapes of ResNet-50 (He et al., 2016),
/// v1.5-style (stride lives in the 3×3 of each stage's first block).
///
/// Anchors fixed by the paper: `L0` = 7×7 stem; `L14` has 512 filters
/// (Figs 5, 7, 12, 20); `L16` is the 3×3 128→128 @28×28 layer of
/// Tables I–IV (GEMM `M = 784`, `K = 1152`); `L45` has 2048 filters
/// (Fig 15). Conv layer counts per the paper: filters range 64–2048.
pub fn resnet50() -> Network {
    Network::new(
        "ResNet-50",
        vec![
            // Stem.
            l("ResNet.L0", 7, 2, 3, 3, 64, 224),
            // conv2 stage (56x56): reduce / 3x3 / expand / later-block reduce.
            l("ResNet.L1", 1, 1, 0, 64, 64, 56),
            l("ResNet.L2", 3, 1, 1, 64, 64, 56),
            l("ResNet.L3", 1, 1, 0, 64, 256, 56),
            l("ResNet.L5", 1, 1, 0, 256, 64, 56),
            // conv3 stage (56 -> 28).
            l("ResNet.L11", 1, 1, 0, 256, 128, 56),
            l("ResNet.L12", 3, 2, 1, 128, 128, 56),
            l("ResNet.L13", 1, 1, 0, 128, 512, 28),
            l("ResNet.L14", 1, 2, 0, 256, 512, 56), // projection, 512 filters
            l("ResNet.L15", 1, 1, 0, 512, 128, 28),
            l("ResNet.L16", 3, 1, 1, 128, 128, 28), // Tables I–IV layer
            // conv4 stage (28 -> 14).
            l("ResNet.L24", 1, 1, 0, 512, 256, 28),
            l("ResNet.L25", 3, 2, 1, 256, 256, 28),
            l("ResNet.L26", 1, 1, 0, 256, 1024, 14),
            l("ResNet.L27", 1, 2, 0, 512, 1024, 28), // projection
            l("ResNet.L28", 1, 1, 0, 1024, 256, 14),
            l("ResNet.L29", 3, 1, 1, 256, 256, 14),
            // conv5 stage (14 -> 7).
            l("ResNet.L43", 1, 1, 0, 1024, 512, 14),
            l("ResNet.L44", 3, 2, 1, 512, 512, 14),
            l("ResNet.L45", 1, 1, 0, 512, 2048, 7), // 2048 filters (Fig 15)
            l("ResNet.L46", 1, 2, 0, 1024, 2048, 14), // projection
            l("ResNet.L47", 1, 1, 0, 2048, 512, 7),
            l("ResNet.L48", 3, 1, 1, 512, 512, 7),
        ],
    )
}

/// The 9 unique convolutional layer shapes of VGG-16 (Simonyan & Zisserman).
///
/// §III-B: indices 0, 2, 5, 7, 10, 12, 17, 19, 24 with 64, 64, 128, 128,
/// 256, 256, 512, 512, 512 filters respectively; all kernels are 3×3.
pub fn vgg16() -> Network {
    Network::new(
        "VGG-16",
        vec![
            l("VGG.L0", 3, 1, 1, 3, 64, 224),
            l("VGG.L2", 3, 1, 1, 64, 64, 224),
            l("VGG.L5", 3, 1, 1, 64, 128, 112),
            l("VGG.L7", 3, 1, 1, 128, 128, 112),
            l("VGG.L10", 3, 1, 1, 128, 256, 56),
            l("VGG.L12", 3, 1, 1, 256, 256, 56),
            l("VGG.L17", 3, 1, 1, 256, 512, 28),
            l("VGG.L19", 3, 1, 1, 512, 512, 28),
            l("VGG.L24", 3, 1, 1, 512, 512, 14),
        ],
    )
}

/// The 5 convolutional layers of AlexNet (Krizhevsky et al.).
///
/// §III-B: indices 0, 3, 6, 8, 10 with 64, 192, 384, 256, 256 filters.
pub fn alexnet() -> Network {
    Network::new(
        "AlexNet",
        vec![
            l("AlexNet.L0", 11, 4, 2, 3, 64, 224),
            l("AlexNet.L3", 5, 1, 2, 64, 192, 27),
            l("AlexNet.L6", 3, 1, 1, 192, 384, 13),
            l("AlexNet.L8", 3, 1, 1, 384, 256, 13),
            l("AlexNet.L10", 3, 1, 1, 256, 256, 13),
        ],
    )
}

/// Grouped/depthwise shorthand.
#[allow(clippy::too_many_arguments)]
fn dw(label: &str, stride: usize, c: usize, hw_in: usize) -> ConvLayerSpec {
    ConvLayerSpec::new_grouped(label, 3, stride, 1, c, c, hw_in, hw_in, c)
}

/// The 19 unique convolutional layer shapes of MobileNetV1 (width 1.0).
///
/// **Extension beyond the paper**: the paper's motivation — “designing new
/// neural network architectures for specific devices should consider the
/// best sizes of convolutional layers for each library and hardware” —
/// applies directly to depthwise-separable networks, whose pointwise
/// layers show the same staircases. Labels index the 27 conv layers in
/// network order (repeated depthwise/pointwise shapes appear once).
pub fn mobilenet_v1() -> Network {
    Network::new(
        "MobileNetV1",
        vec![
            l("MobileNet.L0", 3, 2, 1, 3, 32, 224),
            dw("MobileNet.L1", 1, 32, 112),
            l("MobileNet.L2", 1, 1, 0, 32, 64, 112),
            dw("MobileNet.L3", 2, 64, 112),
            l("MobileNet.L4", 1, 1, 0, 64, 128, 56),
            dw("MobileNet.L5", 1, 128, 56),
            l("MobileNet.L6", 1, 1, 0, 128, 128, 56),
            dw("MobileNet.L7", 2, 128, 56),
            l("MobileNet.L8", 1, 1, 0, 128, 256, 28),
            dw("MobileNet.L9", 1, 256, 28),
            l("MobileNet.L10", 1, 1, 0, 256, 256, 28),
            dw("MobileNet.L11", 2, 256, 28),
            l("MobileNet.L12", 1, 1, 0, 256, 512, 14),
            dw("MobileNet.L13", 1, 512, 14),
            l("MobileNet.L14", 1, 1, 0, 512, 512, 14),
            dw("MobileNet.L23", 2, 512, 14),
            l("MobileNet.L24", 1, 1, 0, 512, 1024, 7),
            dw("MobileNet.L25", 1, 1024, 7),
            l("MobileNet.L26", 1, 1, 0, 1024, 1024, 7),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet_has_23_unique_layers() {
        assert_eq!(resnet50().len(), 23);
    }

    #[test]
    fn resnet_filter_range_matches_paper() {
        // §III-B: “Convolutional layers have a number of filters between 64
        // and 2048.”
        let net = resnet50();
        let min = net.layers().iter().map(|l| l.c_out()).min().unwrap();
        let max = net.layers().iter().map(|l| l.c_out()).max().unwrap();
        assert_eq!((min, max), (64, 2048));
    }

    #[test]
    fn resnet_kernels_are_3x3_and_1x1_plus_stem() {
        // §III-B: filters of size 3×3 and 1×1 (the 7×7 stem aside).
        for layer in resnet50().layers() {
            if layer.label() == "ResNet.L0" {
                assert_eq!(layer.kernel(), 7);
            } else {
                assert!(matches!(layer.kernel(), 1 | 3), "{layer}");
            }
        }
    }

    #[test]
    fn resnet_anchor_layers() {
        let net = resnet50();
        let l16 = net.layer("ResNet.L16").unwrap();
        assert_eq!(l16.dims().gemm_mkn().unwrap(), (784, 1152, 128));
        assert_eq!(net.layer("ResNet.L14").unwrap().c_out(), 512);
        assert_eq!(net.layer("ResNet.L45").unwrap().c_out(), 2048);
        // Fig 2's ~1000-channel staircase layer exists.
        assert_eq!(net.layer("ResNet.L26").unwrap().c_out(), 1024);
    }

    #[test]
    fn resnet_spatial_chain_is_consistent() {
        // Every layer produces a feature map no larger than its input and
        // stage extents follow the 224→112→56→28→14→7 pyramid.
        for layer in resnet50().layers() {
            let (oh, ow) = layer.out_hw();
            assert!(oh <= layer.h_in() && ow <= layer.w_in(), "{layer}");
            assert!(
                matches!(oh, 112 | 56 | 28 | 14 | 7),
                "unexpected output extent {oh} for {layer}"
            );
        }
    }

    #[test]
    fn vgg_matches_paper_listing() {
        let net = vgg16();
        assert_eq!(net.len(), 9);
        let labels: Vec<&str> = net.layers().iter().map(|l| l.label()).collect();
        assert_eq!(
            labels,
            [
                "VGG.L0", "VGG.L2", "VGG.L5", "VGG.L7", "VGG.L10", "VGG.L12", "VGG.L17", "VGG.L19",
                "VGG.L24"
            ]
        );
        let filters: Vec<usize> = net.layers().iter().map(|l| l.c_out()).collect();
        assert_eq!(filters, [64, 64, 128, 128, 256, 256, 512, 512, 512]);
        assert!(net.layers().iter().all(|l| l.kernel() == 3));
    }

    #[test]
    fn alexnet_matches_paper_listing() {
        let net = alexnet();
        assert_eq!(net.len(), 5);
        let filters: Vec<usize> = net.layers().iter().map(|l| l.c_out()).collect();
        assert_eq!(filters, [64, 192, 384, 256, 256]);
        // 11x11 stride-4 stem produces the classic 55x55 map... on 227 input;
        // with 224 + pad 2 it is 55 as well: (224 + 4 - 11)/4 + 1 = 55.
        assert_eq!(net.layers()[0].out_hw(), (55, 55));
    }

    #[test]
    fn all_catalog_layers_have_valid_geometry() {
        for net in [resnet50(), vgg16(), alexnet()] {
            for layer in net.layers() {
                assert!(layer.macs() > 0, "{layer}");
            }
        }
    }

    #[test]
    fn mobilenet_has_19_unique_layers() {
        let net = mobilenet_v1();
        assert_eq!(net.len(), 19);
        // Alternating depthwise / pointwise after the stem.
        let dw_count = net.layers().iter().filter(|l| l.is_depthwise()).count();
        assert_eq!(dw_count, 9);
        // Depthwise layers carry one input channel per filter.
        for layer in net.layers().iter().filter(|l| l.is_depthwise()) {
            assert_eq!(layer.taps(), 9, "{layer}");
        }
    }

    #[test]
    fn mobilenet_pointwise_dominates_macs() {
        // The classic depthwise-separable property: 1x1 convs carry the
        // overwhelming share of the arithmetic.
        let net = mobilenet_v1();
        let pw: u64 = net
            .layers()
            .iter()
            .filter(|l| l.kernel() == 1)
            .map(|l| l.macs())
            .sum();
        assert!(pw as f64 / net.total_macs() as f64 > 0.80);
    }

    #[test]
    fn depthwise_pruning_shrinks_input_too() {
        let net = mobilenet_v1();
        let dw = net.layer("MobileNet.L13").unwrap();
        let pruned = dw.with_c_out(384).unwrap();
        assert_eq!(pruned.c_in(), 384);
        assert_eq!(pruned.groups(), 384);
        assert!(pruned.is_depthwise());
    }

    #[test]
    fn vgg_macs_dominated_by_early_layers() {
        // Sanity on the catalog: VGG's 224x224 layers are the most work.
        let net = vgg16();
        let l2 = net.layer("VGG.L2").unwrap().macs();
        let l24 = net.layer("VGG.L24").unwrap().macs();
        assert!(l2 > l24);
    }
}

//! Complete sequential networks: convolutions plus the “other layer types”
//! of §II-A (pooling, ReLU, fully-connected), with per-op FLOP accounting
//! and an executable forward pass over the tensor substrate.
//!
//! The paper justifies profiling only convolutions because “these affine
//! transformations account for very little in the total inference time”
//! (SENet's convs are 99.991% of its FLOPs). [`FullNetwork::conv_flops_share`]
//! verifies that claim for the catalogs we ship.

use pruneperf_tensor::conv::{grouped, im2col_gemm};
use pruneperf_tensor::{ops, Tensor, TensorError};
use serde::{Deserialize, Serialize};

use crate::{weights, ConvLayerSpec};

/// One operation of a sequential network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LayerOp {
    /// Convolution (dense or grouped).
    Conv(ConvLayerSpec),
    /// ReLU over the previous output.
    Relu,
    /// Square max pooling.
    MaxPool {
        /// Window extent.
        window: usize,
        /// Stride.
        stride: usize,
    },
    /// Global average pooling to `1×1` spatial.
    GlobalAvgPool,
    /// Fully-connected layer.
    FullyConnected {
        /// Label used to seed the synthetic weights.
        label: String,
        /// Input features (flattened).
        in_features: usize,
        /// Output features.
        out_features: usize,
    },
    /// Residual block: `output = body(input) + shortcut(input)`, where the
    /// shortcut is identity or a projection convolution (ResNet's
    /// bottleneck structure).
    Residual {
        /// Operations on the main path.
        body: Vec<LayerOp>,
        /// Optional projection conv for the shortcut (stage transitions).
        projection: Option<ConvLayerSpec>,
    },
}

/// A sequential network of [`LayerOp`]s with FLOP accounting and a real
/// (CPU) forward pass using deterministic synthetic weights.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FullNetwork {
    name: String,
    input_hw: usize,
    input_c: usize,
    ops: Vec<LayerOp>,
}

impl FullNetwork {
    /// Creates a network from its operations.
    pub fn new(
        name: impl Into<String>,
        input_hw: usize,
        input_c: usize,
        ops: Vec<LayerOp>,
    ) -> Self {
        FullNetwork {
            name: name.into(),
            input_hw,
            input_c,
            ops,
        }
    }

    /// Network name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Input spatial extent (square).
    pub fn input_hw(&self) -> usize {
        self.input_hw
    }

    /// Input channel count.
    pub fn input_c(&self) -> usize {
        self.input_c
    }

    /// The operations in execution order.
    pub fn ops(&self) -> &[LayerOp] {
        &self.ops
    }

    /// Labels of every convolution in execution order (descending into
    /// residual bodies and projections).
    pub fn conv_labels(&self) -> Vec<String> {
        fn collect_convs(ops: &[LayerOp], out: &mut Vec<String>) {
            for op in ops {
                match op {
                    LayerOp::Conv(spec) => out.push(spec.label().to_string()),
                    LayerOp::Residual { body, projection } => {
                        // lint: allow(recursion-bound) — residual bodies nest one level by construction (NV003)
                        collect_convs(body, out);
                        if let Some(p) = projection {
                            out.push(p.label().to_string());
                        }
                    }
                    _ => {}
                }
            }
        }
        let mut out = Vec::new();
        collect_convs(&self.ops, &mut out);
        out
    }

    /// Applies a channel-pruning keep map with **paired input-side pruning
    /// propagated downstream** (§II-B): every convolution's output channels
    /// shrink to its `kept` entry, the next layer's input channels follow,
    /// fully-connected inputs rescale with their feeding channel count, and
    /// residual shortcuts stay shape-consistent (projections follow the
    /// body; identity-shortcut bodies keep the block width).
    ///
    /// Kept counts are clamped to `1..=c_out`; labels absent from the map
    /// keep their original width. Grouped (non-depthwise) convolutions are
    /// left unpruned — arbitrary keeps would break group divisibility.
    pub fn pruned_with_kept(&self, kept: &std::collections::HashMap<String, usize>) -> FullNetwork {
        // Walks ops tracking (original, pruned) channel counts. `force_out`
        // pins the final conv's output (identity-shortcut residual bodies).
        fn prune_ops(
            ops: &[LayerOp],
            orig_c: &mut usize,
            new_c: &mut usize,
            force_out: Option<usize>,
            kept: &std::collections::HashMap<String, usize>,
        ) -> Vec<LayerOp> {
            let last_conv = ops
                .iter()
                .rposition(|op| matches!(op, LayerOp::Conv(_) | LayerOp::Residual { .. }));
            ops.iter()
                .enumerate()
                .map(|(i, op)| match op {
                    LayerOp::Conv(spec) => {
                        let pinned = (Some(i) == last_conv).then_some(force_out).flatten();
                        let (c_out, groups) = if spec.is_depthwise() {
                            (*new_c, *new_c)
                        } else if spec.groups() > 1 {
                            (spec.c_out(), spec.groups())
                        } else if let Some(pin) = pinned {
                            (pin, 1)
                        } else {
                            let k = kept.get(spec.label()).copied().unwrap_or(spec.c_out());
                            (k.clamp(1, spec.c_out()), 1)
                        };
                        let new = ConvLayerSpec::new_grouped(
                            spec.label(),
                            spec.kernel(),
                            spec.stride(),
                            spec.pad(),
                            *new_c,
                            c_out,
                            spec.h_in(),
                            spec.w_in(),
                            groups,
                        );
                        *orig_c = spec.c_out();
                        *new_c = c_out;
                        LayerOp::Conv(new)
                    }
                    LayerOp::FullyConnected {
                        label,
                        in_features,
                        out_features,
                    } => {
                        // The flattened input shrinks with its feeding
                        // channels; catalog in_features are exact multiples.
                        let scaled = if *orig_c > 0 && in_features.is_multiple_of(*orig_c) {
                            in_features / *orig_c * *new_c
                        } else {
                            *in_features
                        };
                        *orig_c = *out_features;
                        *new_c = *out_features;
                        LayerOp::FullyConnected {
                            label: label.clone(),
                            in_features: scaled,
                            out_features: *out_features,
                        }
                    }
                    LayerOp::Residual { body, projection } => {
                        let (mut b_orig, mut b_new) = (*orig_c, *new_c);
                        let force = projection.is_none().then_some(*new_c);
                        let new_body = prune_ops(body, &mut b_orig, &mut b_new, force, kept);
                        let new_proj = projection.as_ref().map(|p| {
                            ConvLayerSpec::new(
                                p.label(),
                                p.kernel(),
                                p.stride(),
                                p.pad(),
                                *new_c,
                                b_new,
                                p.h_in(),
                                p.w_in(),
                            )
                        });
                        *orig_c = b_orig;
                        *new_c = b_new;
                        LayerOp::Residual {
                            body: new_body,
                            projection: new_proj,
                        }
                    }
                    other => other.clone(),
                })
                .collect()
        }
        let mut orig_c = self.input_c;
        let mut new_c = self.input_c;
        let ops = prune_ops(&self.ops, &mut orig_c, &mut new_c, None, kept);
        FullNetwork {
            name: format!("{} (pruned)", self.name),
            input_hw: self.input_hw,
            input_c: self.input_c,
            ops,
        }
    }

    /// FLOPs per op, paired with whether the op is a convolution.
    pub fn flops_breakdown(&self) -> Vec<(String, u64, bool)> {
        let mut hw = self.input_hw;
        let mut c = self.input_c;
        let mut out = Vec::with_capacity(self.ops.len());
        for op in &self.ops {
            match op {
                LayerOp::Conv(spec) => {
                    // lint: allow(unwrap) — specs were validated by ConvLayerSpec::new
                    let flops = spec.dims().flops().expect("catalog geometry valid");
                    out.push((spec.label().to_string(), flops, true));
                    hw = spec.out_hw().0;
                    c = spec.c_out();
                }
                LayerOp::Relu => {
                    out.push(("relu".into(), (hw * hw * c) as u64, false));
                }
                LayerOp::MaxPool { window, stride } => {
                    let out_hw = (hw - window) / stride + 1;
                    out.push((
                        format!("maxpool{window}"),
                        (out_hw * out_hw * c * window * window) as u64,
                        false,
                    ));
                    hw = out_hw;
                }
                LayerOp::GlobalAvgPool => {
                    out.push(("gap".into(), (hw * hw * c) as u64, false));
                    hw = 1;
                }
                LayerOp::FullyConnected {
                    label,
                    in_features,
                    out_features,
                } => {
                    out.push((
                        label.clone(),
                        2 * (in_features * out_features) as u64,
                        false,
                    ));
                    hw = 1;
                    c = *out_features;
                }
                LayerOp::Residual { body, projection } => {
                    let inner = FullNetwork::new("block", hw, c, body.clone());
                    let mut body_hw = hw;
                    let mut body_c = c;
                    for (name, flops, is_conv) in inner.flops_breakdown() {
                        out.push((name, flops, is_conv));
                    }
                    // Track the body's output geometry.
                    for op in body {
                        if let LayerOp::Conv(spec) = op {
                            body_hw = spec.out_hw().0;
                            body_c = spec.c_out();
                        }
                    }
                    if let Some(proj) = projection {
                        out.push((
                            proj.label().to_string(),
                            // lint: allow(unwrap) — specs were validated by ConvLayerSpec::new
                            proj.dims().flops().expect("catalog geometry valid"),
                            true,
                        ));
                    }
                    // Elementwise add.
                    out.push((
                        "residual_add".into(),
                        (body_hw * body_hw * body_c) as u64,
                        false,
                    ));
                    hw = body_hw;
                    c = body_c;
                }
            }
        }
        out
    }

    /// Total FLOPs of one forward pass.
    pub fn total_flops(&self) -> u64 {
        self.flops_breakdown().iter().map(|(_, f, _)| f).sum()
    }

    /// Fraction of FLOPs spent in convolutions (§II-A: ≈ 0.999 for large
    /// CNNs).
    pub fn conv_flops_share(&self) -> f64 {
        let breakdown = self.flops_breakdown();
        let conv: u64 = breakdown
            .iter()
            .filter(|(_, _, c)| *c)
            .map(|(_, f, _)| f)
            .sum();
        conv as f64 / self.total_flops().max(1) as f64
    }

    /// Runs the network on an input tensor with deterministic synthetic
    /// weights.
    ///
    /// # Errors
    ///
    /// Propagates shape errors if `input` does not match the declared input
    /// geometry or an op chain is inconsistent.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor, TensorError> {
        let mut x = input.clone();
        for op in &self.ops {
            x = match op {
                LayerOp::Conv(spec) => {
                    // Respect the *actual* activation geometry (callers may
                    // run spatially scaled-down inputs for testing).
                    let [_, h, w, c_in] = x.shape().dims();
                    let runtime_spec = ConvLayerSpec::new_grouped(
                        spec.label(),
                        spec.kernel(),
                        spec.stride(),
                        spec.pad(),
                        c_in,
                        spec.c_out(),
                        h,
                        w,
                        spec.groups().min(c_in),
                    );
                    let wts = weights::synthetic_weights(&runtime_spec);
                    if runtime_spec.groups() > 1 {
                        grouped::conv2d_grouped(
                            &x,
                            &wts,
                            runtime_spec.params(),
                            runtime_spec.groups(),
                        )?
                    } else {
                        im2col_gemm::conv2d(&x, &wts, runtime_spec.params())?
                    }
                }
                LayerOp::Relu => ops::relu(&x),
                LayerOp::MaxPool { window, stride } => ops::max_pool2d(&x, *window, *stride)?,
                LayerOp::GlobalAvgPool => ops::global_avg_pool(&x),
                LayerOp::FullyConnected {
                    label,
                    out_features,
                    ..
                } => {
                    let [_, h, w, c] = x.shape().dims();
                    let fc_spec =
                        ConvLayerSpec::new(label.clone(), 1, 1, 0, h * w * c, *out_features, 1, 1);
                    let wts = weights::synthetic_weights(&fc_spec);
                    ops::fully_connected(&x, &wts)?
                }
                LayerOp::Residual { body, projection } => {
                    let [_, h, w, c_in] = x.shape().dims();
                    let inner = FullNetwork::new("block", h, c_in, body.clone());
                    let main = inner.forward(&x)?;
                    let shortcut = match projection {
                        Some(proj) => {
                            let [_, hh, ww, cc] = x.shape().dims();
                            let rp = ConvLayerSpec::new(
                                proj.label(),
                                proj.kernel(),
                                proj.stride(),
                                proj.pad(),
                                cc,
                                proj.c_out(),
                                hh,
                                ww,
                            );
                            let wts = weights::synthetic_weights(&rp);
                            im2col_gemm::conv2d(&x, &wts, rp.params())?
                        }
                        None => x.clone(),
                    };
                    let _ = w;
                    add_tensors(&main, &shortcut)?
                }
            };
        }
        Ok(x)
    }
}

/// Element-wise tensor addition (shapes must match).
fn add_tensors(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    if a.shape() != b.shape() {
        return Err(TensorError::DataLengthMismatch {
            shape: a.shape(),
            len: b.as_slice().len(),
        });
    }
    Tensor::from_vec(
        a.shape(),
        a.as_slice()
            .iter()
            .zip(b.as_slice())
            .map(|(x, y)| x + y)
            .collect(),
    )
}

/// One ResNet bottleneck block (reduce 1x1 → 3x3 → expand 1x1, optional
/// projection shortcut).
#[allow(clippy::too_many_arguments)]
fn bottleneck(
    prefix: &str,
    c_in: usize,
    c_mid: usize,
    c_out: usize,
    hw_in: usize,
    stride: usize,
    project: bool,
) -> LayerOp {
    let hw_out = hw_in / stride;
    let body = vec![
        LayerOp::Conv(ConvLayerSpec::new(
            format!("{prefix}.reduce"),
            1,
            1,
            0,
            c_in,
            c_mid,
            hw_in,
            hw_in,
        )),
        LayerOp::Relu,
        LayerOp::Conv(ConvLayerSpec::new(
            format!("{prefix}.conv3"),
            3,
            stride,
            1,
            c_mid,
            c_mid,
            hw_in,
            hw_in,
        )),
        LayerOp::Relu,
        LayerOp::Conv(ConvLayerSpec::new(
            format!("{prefix}.expand"),
            1,
            1,
            0,
            c_mid,
            c_out,
            hw_out,
            hw_out,
        )),
    ];
    let projection = project.then(|| {
        ConvLayerSpec::new(
            format!("{prefix}.proj"),
            1,
            stride,
            0,
            c_in,
            c_out,
            hw_in,
            hw_in,
        )
    });
    LayerOp::Residual { body, projection }
}

/// ResNet-50 as a complete network with residual blocks (v1.5 style,
/// matching the `resnet50()` catalog's unique shapes).
pub fn resnet50_full() -> FullNetwork {
    let mut ops = vec![
        LayerOp::Conv(ConvLayerSpec::new("RNFull.stem", 7, 2, 3, 3, 64, 224, 224)),
        LayerOp::Relu,
        LayerOp::MaxPool {
            window: 2,
            stride: 2,
        },
    ];
    let stages: [(usize, usize, usize, usize, usize); 4] = [
        // (blocks, c_in, c_mid, c_out, hw at stage input)
        (3, 64, 64, 256, 56),
        (4, 256, 128, 512, 56),
        (6, 512, 256, 1024, 28),
        (3, 1024, 512, 2048, 14),
    ];
    for (stage_idx, (blocks, c_in, c_mid, c_out, hw)) in stages.into_iter().enumerate() {
        for b in 0..blocks {
            let first = b == 0;
            // v1.5: the stage's first block downsamples (stages 1..3).
            let stride = if first && stage_idx > 0 { 2 } else { 1 };
            let block_in = if first { c_in } else { c_out };
            let hw_here = if first || stage_idx == 0 { hw } else { hw / 2 };
            ops.push(bottleneck(
                &format!("RNFull.s{stage_idx}b{b}"),
                block_in,
                c_mid,
                c_out,
                hw_here,
                stride,
                first,
            ));
            ops.push(LayerOp::Relu);
        }
    }
    ops.push(LayerOp::GlobalAvgPool);
    ops.push(LayerOp::FullyConnected {
        label: "RNFull.FC".into(),
        in_features: 2048,
        out_features: 1000,
    });
    FullNetwork::new("ResNet-50 (full)", 224, 3, ops)
}

/// VGG-16 as a complete sequential network (13 convs, 5 max-pools, 3 FCs).
pub fn vgg16_full() -> FullNetwork {
    let mut ops = Vec::new();
    let blocks: [(usize, usize, usize, usize); 5] = [
        // (convs in block, c_in, c_out, input hw)
        (2, 3, 64, 224),
        (2, 64, 128, 112),
        (3, 128, 256, 56),
        (3, 256, 512, 28),
        (3, 512, 512, 14),
    ];
    let mut idx = 0;
    for (convs, c_in, c_out, hw) in blocks {
        for k in 0..convs {
            let ci = if k == 0 { c_in } else { c_out };
            ops.push(LayerOp::Conv(ConvLayerSpec::new(
                format!("VGGFull.C{idx}"),
                3,
                1,
                1,
                ci,
                c_out,
                hw,
                hw,
            )));
            ops.push(LayerOp::Relu);
            idx += 1;
        }
        ops.push(LayerOp::MaxPool {
            window: 2,
            stride: 2,
        });
    }
    ops.push(LayerOp::FullyConnected {
        label: "VGGFull.FC0".into(),
        in_features: 7 * 7 * 512,
        out_features: 4096,
    });
    ops.push(LayerOp::Relu);
    ops.push(LayerOp::FullyConnected {
        label: "VGGFull.FC1".into(),
        in_features: 4096,
        out_features: 4096,
    });
    ops.push(LayerOp::Relu);
    ops.push(LayerOp::FullyConnected {
        label: "VGGFull.FC2".into(),
        in_features: 4096,
        out_features: 1000,
    });
    FullNetwork::new("VGG-16 (full)", 224, 3, ops)
}

/// AlexNet as a complete sequential network.
pub fn alexnet_full() -> FullNetwork {
    let conv = |label: &str, k: usize, s: usize, p: usize, ci: usize, co: usize, hw: usize| {
        LayerOp::Conv(ConvLayerSpec::new(label, k, s, p, ci, co, hw, hw))
    };
    FullNetwork::new(
        "AlexNet (full)",
        224,
        3,
        vec![
            conv("AlexFull.C0", 11, 4, 2, 3, 64, 224),
            LayerOp::Relu,
            LayerOp::MaxPool {
                window: 3,
                stride: 2,
            },
            conv("AlexFull.C1", 5, 1, 2, 64, 192, 27),
            LayerOp::Relu,
            LayerOp::MaxPool {
                window: 3,
                stride: 2,
            },
            conv("AlexFull.C2", 3, 1, 1, 192, 384, 13),
            LayerOp::Relu,
            conv("AlexFull.C3", 3, 1, 1, 384, 256, 13),
            LayerOp::Relu,
            conv("AlexFull.C4", 3, 1, 1, 256, 256, 13),
            LayerOp::Relu,
            LayerOp::MaxPool {
                window: 3,
                stride: 2,
            },
            LayerOp::FullyConnected {
                label: "AlexFull.FC0".into(),
                in_features: 6 * 6 * 256,
                out_features: 4096,
            },
            LayerOp::Relu,
            LayerOp::FullyConnected {
                label: "AlexFull.FC1".into(),
                in_features: 4096,
                out_features: 4096,
            },
            LayerOp::Relu,
            LayerOp::FullyConnected {
                label: "AlexFull.FC2".into(),
                in_features: 4096,
                out_features: 1000,
            },
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// §II-A: convolutions dominate total FLOPs in classic CNNs.
    #[test]
    fn conv_flops_dominate_vgg() {
        let share = vgg16_full().conv_flops_share();
        assert!(share > 0.98, "VGG conv share {share}");
    }

    #[test]
    fn alexnet_fc_layers_take_a_visible_share() {
        // AlexNet famously has heavy FC layers; conv share is lower than
        // VGG's but convs still dominate.
        let share = alexnet_full().conv_flops_share();
        assert!((0.80..0.99).contains(&share), "AlexNet conv share {share}");
    }

    #[test]
    fn vgg_total_flops_in_known_range() {
        // VGG-16 forward ≈ 15.5 GFLOPs for 224x224 (convs) + ~0.25 for FCs.
        let total = vgg16_full().total_flops() as f64;
        assert!((29.0e9..32.5e9).contains(&total), "{total}");
    }

    /// A scaled-down forward pass runs end to end and produces logits.
    #[test]
    fn alexnet_forward_runs_scaled() {
        // Feed the real 224 geometry but it is too slow for a unit test;
        // use a custom tiny net exercising every op kind instead.
        let net = FullNetwork::new(
            "Tiny (full)",
            16,
            3,
            vec![
                LayerOp::Conv(ConvLayerSpec::new("TinyFull.C0", 3, 1, 1, 3, 8, 16, 16)),
                LayerOp::Relu,
                LayerOp::MaxPool {
                    window: 2,
                    stride: 2,
                },
                LayerOp::Conv(ConvLayerSpec::new_grouped(
                    "TinyFull.DW",
                    3,
                    1,
                    1,
                    8,
                    8,
                    8,
                    8,
                    8,
                )),
                LayerOp::Relu,
                LayerOp::GlobalAvgPool,
                LayerOp::FullyConnected {
                    label: "TinyFull.FC".into(),
                    in_features: 8,
                    out_features: 10,
                },
            ],
        );
        let input = Tensor::from_fn([1, 16, 16, 3], |i| (i % 17) as f32 * 0.05 - 0.4);
        let logits = net.forward(&input).unwrap();
        assert_eq!(logits.shape().dims(), [1, 1, 1, 10]);
        assert!(logits.as_slice().iter().any(|v| *v != 0.0));
        // ReLU + GAP guarantee finite values.
        assert!(logits.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn flops_breakdown_covers_every_op() {
        let net = alexnet_full();
        assert_eq!(net.flops_breakdown().len(), net.ops().len());
        assert!(net.total_flops() > 0);
    }

    #[test]
    fn serde_round_trip() {
        let net = alexnet_full();
        let json = serde_json::to_string(&net).unwrap();
        let back: FullNetwork = serde_json::from_str(&json).unwrap();
        assert_eq!(net, back);
    }

    #[test]
    fn resnet50_full_flops_in_known_range() {
        // ResNet-50 forward ≈ 4.1 GMACs ≈ 8.2 GFLOPs.
        let total = resnet50_full().total_flops() as f64;
        assert!((7.0e9..9.5e9).contains(&total), "{total}");
        // Convolutions dominate despite 16 residual adds.
        assert!(resnet50_full().conv_flops_share() > 0.98);
    }

    #[test]
    fn resnet50_full_contains_all_catalog_shapes() {
        use crate::resnet50;
        // Every unique conv shape of the profiling catalog appears in the
        // full network (ignoring labels).
        let full = resnet50_full();
        let mut full_shapes = std::collections::HashSet::new();
        fn collect(
            ops: &[LayerOp],
            out: &mut std::collections::HashSet<(usize, usize, usize, usize, usize)>,
        ) {
            for op in ops {
                match op {
                    LayerOp::Conv(s) => {
                        out.insert((s.kernel(), s.stride(), s.c_in(), s.c_out(), s.h_in()));
                    }
                    LayerOp::Residual { body, projection } => {
                        collect(body, out);
                        if let Some(p) = projection {
                            out.insert((p.kernel(), p.stride(), p.c_in(), p.c_out(), p.h_in()));
                        }
                    }
                    _ => {}
                }
            }
        }
        collect(full.ops(), &mut full_shapes);
        for layer in resnet50().layers() {
            let key = (
                layer.kernel(),
                layer.stride(),
                layer.c_in(),
                layer.c_out(),
                layer.h_in(),
            );
            assert!(
                full_shapes.contains(&key),
                "catalog shape missing from full net: {layer}"
            );
        }
    }

    #[test]
    fn residual_block_forward_adds_shortcut() {
        // A residual block whose body is an identity-ish conv: output must
        // differ from a plain sequential run by the shortcut addition.
        let body = vec![LayerOp::Conv(ConvLayerSpec::new(
            "ResT.C0", 3, 1, 1, 4, 4, 8, 8,
        ))];
        let with_skip = FullNetwork::new(
            "res",
            8,
            4,
            vec![LayerOp::Residual {
                body: body.clone(),
                projection: None,
            }],
        );
        let without_skip = FullNetwork::new("seq", 8, 4, body);
        let input = Tensor::from_fn([1, 8, 8, 4], |i| ((i % 11) as f32) * 0.1 - 0.5);
        let a = with_skip.forward(&input).unwrap();
        let b = without_skip.forward(&input).unwrap();
        // with_skip == without_skip + input (elementwise).
        for (i, (ya, yb)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
            let expect = yb + input.as_slice()[i];
            assert!((ya - expect).abs() < 1e-5, "at {i}: {ya} vs {expect}");
        }
    }

    #[test]
    fn residual_projection_changes_channels() {
        let block = LayerOp::Residual {
            body: vec![LayerOp::Conv(ConvLayerSpec::new(
                "ResT.C1", 1, 1, 0, 4, 8, 6, 6,
            ))],
            projection: Some(ConvLayerSpec::new("ResT.P", 1, 1, 0, 4, 8, 6, 6)),
        };
        let net = FullNetwork::new("res", 6, 4, vec![block]);
        let input = Tensor::from_fn([1, 6, 6, 4], |i| (i % 5) as f32 * 0.2);
        let y = net.forward(&input).unwrap();
        assert_eq!(y.shape().dims(), [1, 6, 6, 8]);
    }
}

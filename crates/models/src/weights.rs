//! Deterministic synthetic weights and activations for catalog layers.
//!
//! The paper prunes without retraining (§II-B), so weight *values* never
//! influence latency — but the integration tests still exercise real
//! arithmetic end-to-end, and the accuracy surrogate in `pruneperf-core`
//! derives per-channel importances from these tensors. A splitmix64 stream
//! keyed by the layer label keeps everything reproducible without carrying
//! an RNG dependency.

use pruneperf_tensor::Tensor;

use crate::ConvLayerSpec;

/// splitmix64 step — tiny, seedable, good enough for synthetic data.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a hash of a label, used to seed the per-layer stream.
fn label_seed(label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Uniform value in `[-scale, scale)` from the stream.
fn uniform(state: &mut u64, scale: f32) -> f32 {
    let bits = splitmix64(state) >> 40; // 24 random bits
    ((bits as f32 / (1u32 << 24) as f32) * 2.0 - 1.0) * scale
}

/// Deterministic OHWI weight tensor for a layer.
///
/// Values follow a He-style scale (`sqrt(2 / fan_in)`) so multi-layer
/// compositions stay numerically tame in tests.
pub fn synthetic_weights(layer: &ConvLayerSpec) -> Tensor {
    let c_in_per_group = layer.c_in() / layer.groups();
    let fan_in = (layer.kernel() * layer.kernel() * c_in_per_group) as f32;
    let scale = (2.0 / fan_in).sqrt();
    let mut state = label_seed(layer.label());
    Tensor::from_fn(
        [
            layer.c_out(),
            layer.kernel(),
            layer.kernel(),
            c_in_per_group,
        ],
        |_| uniform(&mut state, scale),
    )
}

/// Deterministic NHWC input tensor (batch 1) for a layer.
pub fn synthetic_input(layer: &ConvLayerSpec) -> Tensor {
    let mut state = label_seed(layer.label()) ^ 0xDEAD_BEEF_CAFE_F00D;
    Tensor::from_fn([1, layer.h_in(), layer.w_in(), layer.c_in()], |_| {
        uniform(&mut state, 1.0)
    })
}

/// Per-output-channel L1 norms of a layer's synthetic weights — the
/// magnitude signal channel-pruning criteria rank filters by.
pub fn channel_l1_norms(layer: &ConvLayerSpec) -> Vec<f32> {
    let w = synthetic_weights(layer);
    let [o, kh, kw, i] = w.shape().dims();
    let filter_len = kh * kw * i;
    (0..o)
        .map(|oc| {
            // lint: allow(index) — oc < o and the slice length is o * filter_len by shape
            w.as_slice()[oc * filter_len..(oc + 1) * filter_len]
                .iter()
                .map(|v| v.abs())
                .sum()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resnet50;
    use pruneperf_tensor::conv::{direct, im2col_gemm};
    use pruneperf_tensor::prune;

    fn small_layer() -> ConvLayerSpec {
        ConvLayerSpec::new("Test.L0", 3, 1, 1, 4, 6, 8, 8)
    }

    #[test]
    fn weights_are_deterministic_per_label() {
        let a = synthetic_weights(&small_layer());
        let b = synthetic_weights(&small_layer());
        assert_eq!(a, b);
    }

    #[test]
    fn different_labels_differ() {
        let a = synthetic_weights(&small_layer());
        let other = ConvLayerSpec::new("Test.L1", 3, 1, 1, 4, 6, 8, 8);
        let b = synthetic_weights(&other);
        assert_ne!(a, b);
    }

    #[test]
    fn weight_scale_tracks_fan_in() {
        let w = synthetic_weights(&small_layer());
        let bound = (2.0f32 / (3.0 * 3.0 * 4.0)).sqrt();
        assert!(w.as_slice().iter().all(|v| v.abs() <= bound));
        assert!(w.as_slice().iter().any(|v| v.abs() > bound * 0.5));
    }

    #[test]
    fn synthetic_pair_convolves_on_both_algorithms() {
        let layer = small_layer();
        let x = synthetic_input(&layer);
        let w = synthetic_weights(&layer);
        let a = direct::conv2d(&x, &w, layer.params()).unwrap();
        let b = im2col_gemm::conv2d(&x, &w, layer.params()).unwrap();
        assert!(a.all_close(&b, 1e-4));
        let (oh, ow) = layer.out_hw();
        assert_eq!(a.shape().dims(), [1, oh, ow, layer.c_out()]);
    }

    #[test]
    fn l1_norms_have_one_entry_per_filter() {
        let layer = small_layer();
        let norms = channel_l1_norms(&layer);
        assert_eq!(norms.len(), layer.c_out());
        assert!(norms.iter().all(|n| *n > 0.0));
    }

    #[test]
    fn pruned_weights_match_pruned_spec_shape() {
        let layer = resnet50().layer("ResNet.L16").unwrap().clone();
        let w = synthetic_weights(&layer);
        let pruned_spec = layer.with_c_out(96).unwrap();
        let pruned_w = prune::prune_output_channels_to(&w, 96).unwrap();
        assert_eq!(pruned_w.shape().dims()[0], pruned_spec.c_out(),);
    }
}

use std::fmt;

use pruneperf_tensor::conv::Conv2dParams;
use pruneperf_tensor::flops::ConvDims;
use pruneperf_tensor::TensorError;
use serde::{Deserialize, Serialize};

/// One convolutional layer of a profiled network.
///
/// Carries everything the backends and the pruner need: the paper label
/// (`"ResNet.L16"`), geometry, and the *current* channel count, which
/// channel pruning shrinks. Batch size is fixed at 1 — the paper measures
/// single-image inference latency.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConvLayerSpec {
    label: String,
    kernel: usize,
    stride: usize,
    pad: usize,
    c_in: usize,
    c_out: usize,
    h_in: usize,
    w_in: usize,
    #[serde(default = "default_groups")]
    groups: usize,
}

fn default_groups() -> usize {
    1
}

impl ConvLayerSpec {
    /// Creates a layer spec.
    ///
    /// # Panics
    ///
    /// Panics if any extent is zero — catalog entries are static data and a
    /// malformed one is a programming error.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        label: impl Into<String>,
        kernel: usize,
        stride: usize,
        pad: usize,
        c_in: usize,
        c_out: usize,
        h_in: usize,
        w_in: usize,
    ) -> Self {
        // lint: allow(panic) — documented precondition; with_c_out validates before reaching here
        assert!(
            kernel > 0 && stride > 0 && c_in > 0 && c_out > 0 && h_in > 0 && w_in > 0,
            "layer extents must be non-zero"
        );
        // lint: allow(panic) — documented precondition; with_c_out validates before reaching here
        assert!(
            h_in + 2 * pad >= kernel && w_in + 2 * pad >= kernel,
            "kernel must fit the padded input"
        );
        ConvLayerSpec {
            label: label.into(),
            kernel,
            stride,
            pad,
            c_in,
            c_out,
            h_in,
            w_in,
            groups: 1,
        }
    }

    /// Creates a grouped convolution layer; `groups == c_in == c_out` is
    /// the depthwise case used by MobileNet-style networks.
    ///
    /// # Panics
    ///
    /// Panics if `groups` does not divide both channel counts.
    #[allow(clippy::too_many_arguments)]
    pub fn new_grouped(
        label: impl Into<String>,
        kernel: usize,
        stride: usize,
        pad: usize,
        c_in: usize,
        c_out: usize,
        h_in: usize,
        w_in: usize,
        groups: usize,
    ) -> Self {
        assert!(
            groups > 0 && c_in.is_multiple_of(groups) && c_out.is_multiple_of(groups),
            "groups must divide both channel counts"
        );
        let mut s = Self::new(label, kernel, stride, pad, c_in, c_out, h_in, w_in);
        s.groups = groups;
        s
    }

    /// Convolution groups (1 = dense; `c_in` = depthwise).
    pub fn groups(&self) -> usize {
        self.groups
    }

    /// `true` when every output channel reads exactly one input channel.
    pub fn is_depthwise(&self) -> bool {
        self.groups > 1 && self.groups == self.c_in && self.c_in == self.c_out
    }

    /// Kernel taps each output element reads (`k² · c_in / groups`).
    pub fn taps(&self) -> usize {
        self.kernel * self.kernel * self.c_in / self.groups
    }

    /// Paper label, e.g. `"ResNet.L16"`.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Square kernel extent (1, 3, 5, 7 or 11 in the catalogs).
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// Convolution stride.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Symmetric zero padding.
    pub fn pad(&self) -> usize {
        self.pad
    }

    /// Input channel count.
    pub fn c_in(&self) -> usize {
        self.c_in
    }

    /// Output channel count (the quantity channel pruning reduces).
    pub fn c_out(&self) -> usize {
        self.c_out
    }

    /// Input feature-map height.
    pub fn h_in(&self) -> usize {
        self.h_in
    }

    /// Input feature-map width.
    pub fn w_in(&self) -> usize {
        self.w_in
    }

    /// Stride/pad as convolution parameters.
    pub fn params(&self) -> Conv2dParams {
        Conv2dParams::new(self.stride, self.pad)
    }

    /// Output spatial extents.
    ///
    /// # Panics
    ///
    /// Panics if the kernel does not fit the padded input; catalog entries
    /// are validated at construction so this cannot happen for shipped data.
    pub fn out_hw(&self) -> (usize, usize) {
        self.dims()
            .out_hw()
            // lint: allow(unwrap) — `new` asserts the kernel fits the padded input
            .expect("catalog layer geometry is valid")
    }

    /// Work-accounting dimensions (batch 1).
    pub fn dims(&self) -> ConvDims {
        ConvDims {
            batch: 1,
            h_in: self.h_in,
            w_in: self.w_in,
            c_in: self.c_in,
            c_out: self.c_out,
            kh: self.kernel,
            kw: self.kernel,
            groups: self.groups,
            params: self.params(),
        }
    }

    /// Multiply–accumulate count of the layer.
    pub fn macs(&self) -> u64 {
        // lint: allow(unwrap) — `new` asserts the kernel fits the padded input
        self.dims().macs().expect("catalog layer geometry is valid")
    }

    /// The same layer with a different output channel count — the §II-B
    /// pruning transform at the descriptor level.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ChannelOutOfRange`] when `c_out` is zero or
    /// exceeds the unpruned channel count (pruning never grows a layer).
    pub fn with_c_out(&self, c_out: usize) -> Result<Self, TensorError> {
        if c_out == 0 || c_out > self.c_out {
            return Err(TensorError::ChannelOutOfRange {
                index: c_out,
                channels: self.c_out,
            });
        }
        let mut s = self.clone();
        if self.is_depthwise() {
            // Depthwise channels are 1:1 with input channels: pruning the
            // layer means its input (the preceding pointwise layer) shrank.
            s.c_in = c_out;
            s.groups = c_out;
        } else if self.groups > 1 && !c_out.is_multiple_of(self.groups) {
            return Err(TensorError::ChannelOutOfRange {
                index: c_out,
                channels: self.c_out,
            });
        }
        s.c_out = c_out;
        Ok(s)
    }

    /// The layer after pruning `distance` channels (the paper's `Prune=p`
    /// columns in Figs 1, 6, 8–11, 13, 16, 17, 19).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ChannelOutOfRange`] when the distance would
    /// remove every channel.
    pub fn pruned_by(&self, distance: usize) -> Result<Self, TensorError> {
        if distance >= self.c_out {
            return Err(TensorError::ChannelOutOfRange {
                index: distance,
                channels: self.c_out,
            });
        }
        self.with_c_out(self.c_out - distance)
    }
}

impl fmt::Display for ConvLayerSpec {
    /// Renders e.g. `ResNet.L16: 3x3 s1 p1 128->128 @28x28`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}x{} s{} p{} {}->{} @{}x{}",
            self.label,
            self.kernel,
            self.kernel,
            self.stride,
            self.pad,
            self.c_in,
            self.c_out,
            self.h_in,
            self.w_in
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l16() -> ConvLayerSpec {
        ConvLayerSpec::new("ResNet.L16", 3, 1, 1, 128, 128, 28, 28)
    }

    #[test]
    fn accessors_round_trip() {
        let l = l16();
        assert_eq!(l.label(), "ResNet.L16");
        assert_eq!(l.kernel(), 3);
        assert_eq!(l.stride(), 1);
        assert_eq!(l.pad(), 1);
        assert_eq!((l.c_in(), l.c_out()), (128, 128));
        assert_eq!((l.h_in(), l.w_in()), (28, 28));
        assert_eq!(l.out_hw(), (28, 28));
    }

    #[test]
    fn with_c_out_prunes_only() {
        let l = l16();
        assert_eq!(l.with_c_out(96).unwrap().c_out(), 96);
        assert!(l.with_c_out(0).is_err());
        assert!(l.with_c_out(129).is_err());
        assert_eq!(l.with_c_out(128).unwrap(), l);
    }

    #[test]
    fn pruned_by_distance() {
        let l = l16();
        assert_eq!(l.pruned_by(31).unwrap().c_out(), 97);
        assert!(l.pruned_by(128).is_err());
        assert_eq!(l.pruned_by(0).unwrap(), l);
    }

    #[test]
    fn macs_match_flop_accounting() {
        // 28*28*128*3*3*128
        assert_eq!(l16().macs(), 28 * 28 * 128 * 9 * 128);
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(l16().to_string(), "ResNet.L16: 3x3 s1 p1 128->128 @28x28");
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_extent_panics() {
        let _ = ConvLayerSpec::new("bad", 3, 1, 1, 0, 4, 8, 8);
    }

    #[test]
    fn serde_round_trip() {
        let l = l16();
        let json = serde_json::to_string(&l).unwrap();
        let back: ConvLayerSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(l, back);
    }
}

//! Property-based invariants of the layer catalogs and pruning transforms.

use std::collections::HashMap;

use proptest::prelude::*;
use pruneperf_models::{alexnet, mobilenet_v1, resnet50, vgg16, ConvLayerSpec, Network};

fn any_catalog() -> impl Strategy<Value = Network> {
    prop_oneof![
        Just(resnet50()),
        Just(vgg16()),
        Just(alexnet()),
        Just(mobilenet_v1()),
    ]
}

fn layer_strategy() -> impl Strategy<Value = ConvLayerSpec> {
    (any_catalog(), any::<prop::sample::Index>())
        .prop_map(|(net, idx)| net.layers()[idx.index(net.len())].clone())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// with_c_out never changes anything but the channel dimension(s), and
    /// pruned MACs never exceed the original.
    #[test]
    fn with_c_out_shrinks_macs(layer in layer_strategy(), frac in 0.05f64..1.0) {
        let c = ((layer.c_out() as f64 * frac).ceil() as usize).clamp(1, layer.c_out());
        if let Ok(pruned) = layer.with_c_out(c) {
            prop_assert_eq!(pruned.kernel(), layer.kernel());
            prop_assert_eq!(pruned.stride(), layer.stride());
            prop_assert_eq!(pruned.h_in(), layer.h_in());
            prop_assert!(pruned.macs() <= layer.macs());
            prop_assert_eq!(pruned.c_out(), c);
            if layer.is_depthwise() {
                prop_assert!(pruned.is_depthwise());
                prop_assert_eq!(pruned.c_in(), c);
            } else {
                prop_assert_eq!(pruned.c_in(), layer.c_in());
            }
        } else {
            // Grouped non-depthwise layers can reject counts that break the
            // group structure; nothing else may fail.
            prop_assert!(layer.groups() > 1 && c % layer.groups() != 0);
        }
    }

    /// pruned_by(d) equals with_c_out(c0 - d) wherever both are defined.
    #[test]
    fn pruned_by_matches_with_c_out(layer in layer_strategy(), d in 0usize..64) {
        prop_assume!(d < layer.c_out());
        let via_distance = layer.pruned_by(d);
        let via_count = layer.with_c_out(layer.c_out() - d);
        match (via_distance, via_count) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(false, "divergence: {a:?} vs {b:?}"),
        }
    }

    /// Catalog layers serialize/deserialize losslessly (including groups).
    #[test]
    fn layer_serde_round_trip(layer in layer_strategy()) {
        let json = serde_json::to_string(&layer).expect("serializes");
        let back: ConvLayerSpec = serde_json::from_str(&json).expect("parses");
        prop_assert_eq!(layer, back);
    }

    /// Sequential propagation preserves layer count, labels and order, and
    /// never increases any layer's MACs.
    #[test]
    fn sequential_with_kept_invariants(
        net in prop_oneof![Just(vgg16()), Just(alexnet()), Just(mobilenet_v1())],
        fracs in proptest::collection::vec(0.25f64..=1.0, 30),
    ) {
        let mut kept = HashMap::new();
        for (layer, frac) in net.layers().iter().zip(&fracs) {
            if layer.is_depthwise() {
                continue;
            }
            let c = ((layer.c_out() as f64 * frac).ceil() as usize).clamp(1, layer.c_out());
            kept.insert(layer.label().to_string(), c);
        }
        let coupled = net.sequential_with_kept(&kept);
        prop_assert_eq!(coupled.len(), net.len());
        for (orig, new) in net.layers().iter().zip(coupled.layers()) {
            prop_assert_eq!(orig.label(), new.label());
            prop_assert!(new.macs() <= orig.macs(), "{} grew", new.label());
            prop_assert_eq!(orig.kernel(), new.kernel());
        }
        // Adjacent layers are consistent: c_in follows predecessor's c_out.
        for w in coupled.layers().windows(2) {
            prop_assert_eq!(w[1].c_in(), w[0].c_out());
        }
    }

    /// Network-wide pruned_by keeps every layer valid.
    #[test]
    fn network_pruned_by_stays_valid(net in any_catalog(), d in 0usize..256) {
        let pruned = net.pruned_by(d);
        prop_assert_eq!(pruned.len(), net.len());
        for layer in pruned.layers() {
            prop_assert!(layer.c_out() >= 1);
            prop_assert!(layer.macs() > 0);
        }
    }
}

//! Property-based invariants of the backend planner models.

use proptest::prelude::*;
use pruneperf_backends::{AclDirect, AclDirectTuned, AclGemm, ConvBackend, Cudnn, Tvm};
use pruneperf_gpusim::Device;
use pruneperf_models::ConvLayerSpec;

fn layer_strategy() -> impl Strategy<Value = ConvLayerSpec> {
    (
        prop_oneof![Just(1usize), Just(3usize)], // kernel
        1usize..=2,                              // stride
        4usize..=56,                             // spatial
        1usize..=256,                            // c_in
        1usize..=256,                            // c_out
    )
        .prop_filter("kernel must fit", |(k, _, hw, _, _)| k <= hw)
        .prop_map(|(k, s, hw, ci, co)| {
            let pad = if k == 3 { 1 } else { 0 };
            ConvLayerSpec::new("Prop.L0", k, s, pad, ci, co, hw, hw)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The ACL GEMM split never loses or invents columns: the dispatched
    /// gemm_mm kernels cover exactly ceil4(c_out) columns.
    #[test]
    fn acl_gemm_split_covers_all_columns(layer in layer_strategy()) {
        let device = Device::mali_g72_hikey970();
        let plan = AclGemm::new().plan(&layer, &device);
        let col_quads: usize = plan
            .kernels_named("gemm_mm")
            .map(|k| k.global()[1])
            .sum();
        prop_assert_eq!(col_quads * 4, layer.c_out().div_ceil(4) * 4);
        // At most two gemm kernels, remainder at most 12 columns.
        let gemms: Vec<_> = plan.kernels_named("gemm_mm").collect();
        prop_assert!(gemms.len() <= 2);
        if gemms.len() == 2 {
            prop_assert!(gemms[1].global()[1] * 4 <= 12);
        }
    }

    /// Every backend yields finite positive latency and energy for any
    /// valid layer, on its matching device.
    #[test]
    fn planners_total(layer in layer_strategy()) {
        let mali = Device::mali_g72_hikey970();
        let tx2 = Device::jetson_tx2();
        let cases: Vec<(Box<dyn ConvBackend>, &Device)> = vec![
            (Box::new(AclGemm::new()), &mali),
            (Box::new(AclDirect::new()), &mali),
            (Box::new(AclDirectTuned::new()), &mali),
            (Box::new(Tvm::new()), &mali),
            (Box::new(Cudnn::new()), &tx2),
        ];
        for (backend, device) in cases {
            let ms = backend.latency_ms(&layer, device);
            let mj = backend.energy_mj(&layer, device);
            prop_assert!(ms.is_finite() && ms > 0.0, "{}: {ms}", backend.name());
            prop_assert!(mj.is_finite() && mj > 0.0, "{}: {mj}", backend.name());
        }
    }

    /// cuDNN latency is monotone non-decreasing in the channel count when
    /// measured noiselessly (the staircase never goes down as c grows).
    #[test]
    fn cudnn_staircase_is_monotone(
        base in layer_strategy(),
        c_lo in 1usize..=128,
        delta in 1usize..=64,
    ) {
        prop_assume!(c_lo + delta <= base.c_out().max(c_lo + delta));
        let layer = ConvLayerSpec::new(
            "Prop.L0",
            base.kernel(),
            base.stride(),
            base.pad(),
            base.c_in(),
            c_lo + delta,
            base.h_in(),
            base.w_in(),
        );
        let device = Device::jetson_tx2();
        let b = Cudnn::new();
        let t_lo = b.latency_ms(&layer.with_c_out(c_lo).unwrap(), &device);
        let t_hi = b.latency_ms(&layer, &device);
        prop_assert!(t_hi >= t_lo * 0.999, "t({c_lo})={t_lo} t({})={t_hi}", c_lo + delta);
    }

    /// The auto-tuned direct backend never loses to the heuristic.
    #[test]
    fn autotuner_dominates_heuristic(layer in layer_strategy()) {
        let device = Device::mali_g72_hikey970();
        let t_h = AclDirect::new().latency_ms(&layer, &device);
        let t_t = AclDirectTuned::new().latency_ms(&layer, &device);
        prop_assert!(t_t <= t_h * 1.0001, "tuned {t_t} heuristic {t_h}");
    }

    /// TVM plans are stable under tuning-log serde round trips.
    #[test]
    fn tvm_stable_under_log_round_trip(layer in layer_strategy()) {
        use pruneperf_backends::tuning::TuningLog;
        let device = Device::mali_g72_hikey970();
        let mut log = TuningLog::tophub(device.name());
        log.autotune(&layer, 25);
        let json = serde_json::to_string(&log).expect("serializes");
        let back: TuningLog = serde_json::from_str(&json).expect("parses");
        let a = Tvm::with_log(log).latency_ms(&layer, &device);
        let b = Tvm::with_log(back).latency_ms(&layer, &device);
        prop_assert_eq!(a, b);
    }

    /// Instruction counts across the ACL GEMM chain grow with channel
    /// count, up to one 16-column macro-tile of padding slack: a single
    /// padded kernel can execute up to 16 columns beyond `c4`, so e.g. 245
    /// channels (padded to 256) may retire slightly more instructions than
    /// 249 (split as 240 + 12) — real ACL behaves the same way.
    #[test]
    fn acl_gemm_instructions_monotone_in_c4_with_tile_slack(
        layer in layer_strategy(),
        smaller in 1usize..=255,
    ) {
        prop_assume!(smaller < layer.c_out());
        let device = Device::mali_g72_hikey970();
        let big_plan = AclGemm::new().plan(&layer, &device);
        let big = big_plan.chain().total_arith();
        let small = AclGemm::new()
            .plan(&layer.with_c_out(smaller).unwrap(), &device)
            .chain()
            .total_arith();
        // One macro-tile of slack: 16 columns x (M/4 quads) x per-item cost.
        let per_item = big_plan
            .kernels_named("gemm_mm")
            .next()
            .expect("plan has a gemm")
            .arith_per_item();
        let (out_h, out_w) = layer.out_hw();
        let slack = (out_h * out_w).div_ceil(4) as u64 * 4 * per_item;
        prop_assert!(
            small <= big + slack,
            "arith({smaller})={small} > arith({})={big} + slack {slack}",
            layer.c_out()
        );
    }
}

/// Explicit replays of the shrunk failure cases recorded in
/// `properties.proptest-regressions`.
///
/// The offline proptest stand-in does not consume `.proptest-regressions`
/// seed files (its generation is seeded per test name, not per stored
/// seed), so the historical counterexamples are pinned here as plain
/// deterministic tests and run on every `cargo test`.
mod regressions {
    use pruneperf_backends::tuning::TuningLog;
    use pruneperf_backends::{AclDirect, AclDirectTuned, AclGemm, ConvBackend, Cudnn, Tvm};
    use pruneperf_gpusim::Device;
    use pruneperf_models::ConvLayerSpec;

    /// `cc db484e…`: `layer = { kernel: 1, stride: 1, c_in: 1, c_out: 249,
    /// h_in: 4, w_in: 4 }, smaller = 245`. 249 splits as 240+12 while 245
    /// pads to a single 256-column kernel, so the smaller count retires
    /// more instructions — legal only within one macro-tile of slack.
    #[test]
    fn gemm_instruction_slack_249_vs_245() {
        let layer = ConvLayerSpec::new("Prop.L0", 1, 1, 0, 1, 249, 4, 4);
        let smaller = 245usize;
        let device = Device::mali_g72_hikey970();
        let big_plan = AclGemm::new().plan(&layer, &device);
        let big = big_plan.chain().total_arith();
        let small = AclGemm::new()
            .plan(&layer.with_c_out(smaller).unwrap(), &device)
            .chain()
            .total_arith();
        let per_item = big_plan
            .kernels_named("gemm_mm")
            .next()
            .expect("plan has a gemm")
            .arith_per_item();
        let (out_h, out_w) = layer.out_hw();
        let slack = (out_h * out_w).div_ceil(4) as u64 * 4 * per_item;
        assert!(
            small <= big + slack,
            "arith({smaller})={small} > arith(249)={big} + slack {slack}"
        );
    }

    /// `cc 836d58…`: `layer = { kernel: 1, stride: 2, c_in: 1, c_out: 2,
    /// h_in: 4, w_in: 4 }` — a degenerate strided 1x1 layer. Run it
    /// through every single-layer property so the historical failure stays
    /// covered regardless of which one originally tripped.
    #[test]
    fn degenerate_strided_1x1_layer_holds_all_invariants() {
        let layer = ConvLayerSpec::new("Prop.L0", 1, 2, 0, 1, 2, 4, 4);
        let mali = Device::mali_g72_hikey970();
        let tx2 = Device::jetson_tx2();

        // acl_gemm_split_covers_all_columns
        let plan = AclGemm::new().plan(&layer, &mali);
        let col_quads: usize = plan.kernels_named("gemm_mm").map(|k| k.global()[1]).sum();
        assert_eq!(col_quads * 4, layer.c_out().div_ceil(4) * 4);

        // planners_total
        let cases: Vec<(Box<dyn ConvBackend>, &Device)> = vec![
            (Box::new(AclGemm::new()), &mali),
            (Box::new(AclDirect::new()), &mali),
            (Box::new(AclDirectTuned::new()), &mali),
            (Box::new(Tvm::new()), &mali),
            (Box::new(Cudnn::new()), &tx2),
        ];
        for (backend, device) in cases {
            let ms = backend.latency_ms(&layer, device);
            let mj = backend.energy_mj(&layer, device);
            assert!(ms.is_finite() && ms > 0.0, "{}: {ms}", backend.name());
            assert!(mj.is_finite() && mj > 0.0, "{}: {mj}", backend.name());
        }

        // cudnn_staircase_is_monotone (c_lo = 1, delta = 1)
        let b = Cudnn::new();
        let t_lo = b.latency_ms(&layer.with_c_out(1).unwrap(), &tx2);
        let t_hi = b.latency_ms(&layer, &tx2);
        assert!(t_hi >= t_lo * 0.999, "t(1)={t_lo} t(2)={t_hi}");

        // autotuner_dominates_heuristic
        let t_h = AclDirect::new().latency_ms(&layer, &mali);
        let t_t = AclDirectTuned::new().latency_ms(&layer, &mali);
        assert!(t_t <= t_h * 1.0001, "tuned {t_t} heuristic {t_h}");

        // tvm_stable_under_log_round_trip
        let mut log = TuningLog::tophub(mali.name());
        log.autotune(&layer, 25);
        let json = serde_json::to_string(&log).expect("serializes");
        let back: TuningLog = serde_json::from_str(&json).expect("parses");
        let a = Tvm::with_log(log).latency_ms(&layer, &mali);
        let b = Tvm::with_log(back).latency_ms(&layer, &mali);
        assert_eq!(a, b);
    }
}

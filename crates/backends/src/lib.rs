//! Behavioural models of the deep-learning library planners the paper
//! characterizes: **Arm Compute Library** (Direct convolution and GEMM
//! methods), **cuDNN**, and **TVM**'s OpenCL code generator.
//!
//! A backend is a *planner*: it lowers a [`ConvLayerSpec`] into the list of
//! GPU kernels the library would dispatch on a given [`Device`] — NDRanges,
//! workgroup sizes, instruction mixes, split decisions. Executing that plan
//! on `pruneperf-gpusim` reproduces the paper's findings, because the
//! anomalies the paper reports *are* planner decisions:
//!
//! * [`AclGemm`] splits its `gemm_mm` into two jobs for “odd” channel
//!   groups (reverse-engineered from Tables I–IV: 92 → 80+12, 97 → 96+4),
//!   producing the two parallel staircases of Figs 3, 14 and 15;
//! * [`AclDirect`] picks workgroup shapes `(4,1,1)` / `(2,1,8)` / `(1,1,8)`
//!   from channel divisibility (Table V), producing three alternating
//!   execution levels (Fig 12) and prune-by-1 slowdowns (Fig 10);
//! * [`Cudnn`] tiles output channels by 32 and schedules whole waves onto
//!   2 (TX2) or 1 (Nano) SMs, producing the flat monotone staircases of
//!   Figs 2, 4, 5 and 7;
//! * [`Tvm`] consults a tuning log and falls back to a slow default
//!   schedule for sizes it has no entry for (Figs 19, 20).
//!
//! # Example
//!
//! ```
//! use pruneperf_backends::{AclGemm, ConvBackend};
//! use pruneperf_gpusim::Device;
//! use pruneperf_models::resnet50;
//!
//! let device = Device::mali_g72_hikey970();
//! let layer = resnet50().layer("ResNet.L16").unwrap().clone();
//! let backend = AclGemm::new();
//! // 92 output channels: the ACL heuristic splits the GEMM into two jobs.
//! let plan = backend.plan(&layer.with_c_out(92).unwrap(), &device);
//! let gemms = plan.kernels_named("gemm_mm").count();
//! assert_eq!(gemms, 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod acl_auto;
mod acl_direct;
mod acl_gemm;
mod autotuned;
mod cudnn;
mod plan;
/// Persistent auto-tuning logs (workload keys, schedules, JSON round-trip).
pub mod tuning;
mod tvm;

/// Small deterministic hashing utilities (FNV-1a) shared across crates.
pub mod hash;

pub use acl_auto::{AclAuto, AclMethod};
pub use acl_direct::AclDirect;
pub use acl_gemm::AclGemm;
pub use autotuned::AclDirectTuned;
pub use cudnn::{Cudnn, CudnnAlgorithm};
pub use plan::DispatchPlan;
pub use tvm::Tvm;

use std::fmt;

use pruneperf_gpusim::{Device, Engine};
use pruneperf_models::ConvLayerSpec;

/// Why a fallible cost evaluation failed.
///
/// Produced by [`ConvBackend::try_cost`] implementations — today the
/// profiler's fault-injection wrappers, eventually backends that talk to
/// real hardware, where a query genuinely can fail mid-sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostError {
    /// `true` when retrying the same query may succeed (a transient
    /// failure); `false` when every retry will fail the same way.
    pub transient: bool,
    /// Human-readable description of the failure.
    pub message: String,
}

impl CostError {
    /// A retryable failure.
    pub fn transient(message: impl Into<String>) -> Self {
        CostError {
            transient: true,
            message: message.into(),
        }
    }

    /// A failure that will not go away on retry.
    pub fn permanent(message: impl Into<String>) -> Self {
        CostError {
            transient: false,
            message: message.into(),
        }
    }
}

impl fmt::Display for CostError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = if self.transient {
            "transient"
        } else {
            "permanent"
        };
        write!(f, "{kind} cost failure: {}", self.message)
    }
}

impl std::error::Error for CostError {}

/// A deep-learning library's convolution planner.
///
/// Implementations are deterministic: the same layer and device always
/// produce the same plan. This trait is object-safe so heterogeneous
/// backend collections can be iterated (e.g. the library-shootout example),
/// and `Send + Sync` so backends can be shared across sweep worker threads.
pub trait ConvBackend: Send + Sync {
    /// Library name as the paper uses it (e.g. `"ACL GEMM"`).
    fn name(&self) -> &str;

    /// A stable identity for memoization: two backends with the same
    /// fingerprint must plan identically for every (layer, device) pair.
    ///
    /// The default hashes the library name, which is correct for stateless
    /// planners. Backends with configuration that changes their plans
    /// (e.g. [`Tvm`] with an explicit tuning log) must mix it in.
    fn fingerprint(&self) -> u64 {
        hash::fnv1a(self.name().as_bytes())
    }

    /// Lowers a layer into the kernels the library would dispatch.
    fn plan(&self, layer: &ConvLayerSpec, device: &Device) -> DispatchPlan;

    /// Plans and executes the layer once, returning `(latency ms, energy mJ)`
    /// from the same simulated run — the unit of work a latency cache stores.
    ///
    /// The contract every implementation (and override) must keep:
    /// `cost` equals planning the layer and simulating the resulting chain.
    /// The profiler's latency cache relies on this to reconstruct costs
    /// incrementally from [`ConvBackend::plan`] plus memoized per-kernel
    /// engine costs; a backend whose `cost` diverged from its own plan
    /// would silently disagree with that path. The default uses the
    /// engine's allocation-free [`Engine::chain_cost`], which is bitwise
    /// identical to the `run_chain` report totals.
    fn cost(&self, layer: &ConvLayerSpec, device: &Device) -> (f64, f64) {
        let plan = self.plan(layer, device);
        let cost = Engine::new(device).chain_cost(plan.chain());
        (cost.total_time_ms(), cost.total_energy_mj())
    }

    /// Fallible twin of [`ConvBackend::cost`].
    ///
    /// The simulator backends never fail, so the default wraps [`cost`] in
    /// `Ok`. Decorators that inject faults (and future backends that query
    /// real hardware) override this; every recovery-aware path — the
    /// latency cache's [`try_cost`], the profiler's retrying measurement,
    /// partial network runs — calls it instead of `cost`.
    ///
    /// [`cost`]: ConvBackend::cost
    /// [`try_cost`]: ConvBackend::try_cost
    ///
    /// # Errors
    ///
    /// Returns a [`CostError`] when the evaluation fails; `transient`
    /// distinguishes retryable failures from permanent ones.
    fn try_cost(&self, layer: &ConvLayerSpec, device: &Device) -> Result<(f64, f64), CostError> {
        Ok(self.cost(layer, device))
    }

    /// Convenience: plans and executes the layer, returning latency in ms.
    fn latency_ms(&self, layer: &ConvLayerSpec, device: &Device) -> f64 {
        self.cost(layer, device).0
    }

    /// Convenience: plans and executes the layer, returning energy in mJ.
    fn energy_mj(&self, layer: &ConvLayerSpec, device: &Device) -> f64 {
        self.cost(layer, device).1
    }
}

/// Boxed backends are backends. Every method delegates — including the
/// ones with trait defaults — so a decorator's overridden `fingerprint`
/// or `try_cost` survives boxing instead of silently reverting to the
/// default. This is what lets fault decorators and the serving daemon
/// wrap a runtime-chosen `Box<dyn ConvBackend>`.
impl<B: ConvBackend + ?Sized> ConvBackend for Box<B> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn fingerprint(&self) -> u64 {
        (**self).fingerprint()
    }

    fn plan(&self, layer: &ConvLayerSpec, device: &Device) -> DispatchPlan {
        (**self).plan(layer, device)
    }

    fn cost(&self, layer: &ConvLayerSpec, device: &Device) -> (f64, f64) {
        (**self).cost(layer, device)
    }

    fn try_cost(&self, layer: &ConvLayerSpec, device: &Device) -> Result<(f64, f64), CostError> {
        (**self).try_cost(layer, device)
    }

    fn latency_ms(&self, layer: &ConvLayerSpec, device: &Device) -> f64 {
        (**self).latency_ms(layer, device)
    }

    fn energy_mj(&self, layer: &ConvLayerSpec, device: &Device) -> f64 {
        (**self).energy_mj(layer, device)
    }
}

/// All four backend models, boxed, in the order the paper presents them.
pub fn all_backends() -> Vec<Box<dyn ConvBackend>> {
    vec![
        Box::new(AclDirect::new()),
        Box::new(AclGemm::new()),
        Box::new(Cudnn::new()),
        Box::new(Tvm::new()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use pruneperf_models::resnet50;

    #[test]
    fn all_backends_are_plannable() {
        let layer = resnet50().layer("ResNet.L16").unwrap().clone();
        for backend in all_backends() {
            let device = if backend.name().contains("cuDNN") {
                Device::jetson_tx2()
            } else {
                Device::mali_g72_hikey970()
            };
            let plan = backend.plan(&layer, &device);
            assert!(
                !plan.chain().is_empty(),
                "{} produced no jobs",
                backend.name()
            );
            let ms = backend.latency_ms(&layer, &device);
            assert!(ms > 0.0 && ms < 1000.0, "{}: {ms} ms", backend.name());
        }
    }

    #[test]
    fn fingerprints_distinguish_backends() {
        let backends = all_backends();
        for (i, a) in backends.iter().enumerate() {
            for b in backends.iter().skip(i + 1) {
                assert_ne!(
                    a.fingerprint(),
                    b.fingerprint(),
                    "{} vs {}",
                    a.name(),
                    b.name()
                );
            }
            assert_eq!(a.fingerprint(), a.fingerprint());
        }
    }

    #[test]
    fn cost_matches_latency_and_energy() {
        let layer = resnet50().layer("ResNet.L16").unwrap().clone();
        let device = Device::mali_g72_hikey970();
        let backend = AclGemm::new();
        let (ms, mj) = backend.cost(&layer, &device);
        assert_eq!(ms, backend.latency_ms(&layer, &device));
        assert_eq!(mj, backend.energy_mj(&layer, &device));
    }

    #[test]
    fn default_try_cost_is_infallible_and_matches_cost() {
        let layer = resnet50().layer("ResNet.L16").unwrap().clone();
        let device = Device::mali_g72_hikey970();
        for backend in all_backends() {
            let device = if backend.name().contains("cuDNN") {
                Device::jetson_tx2()
            } else {
                device.clone()
            };
            assert_eq!(
                backend.try_cost(&layer, &device),
                Ok(backend.cost(&layer, &device)),
                "{}",
                backend.name()
            );
        }
    }

    #[test]
    fn cost_is_bitwise_identical_to_full_simulation() {
        // The trait contract: cost == plan + simulate, bit for bit, for
        // every backend — the cache's incremental path depends on it.
        let layer = resnet50().layer("ResNet.L16").unwrap().clone();
        for backend in all_backends() {
            let device = if backend.name().contains("cuDNN") {
                Device::jetson_tx2()
            } else {
                Device::mali_g72_hikey970()
            };
            let (ms, mj) = backend.cost(&layer, &device);
            let plan = backend.plan(&layer, &device);
            let report = Engine::new(&device).run_chain(plan.chain());
            assert_eq!(
                ms.to_bits(),
                report.total_time_ms().to_bits(),
                "{}",
                backend.name()
            );
            assert_eq!(
                mj.to_bits(),
                report.total_energy_mj().to_bits(),
                "{}",
                backend.name()
            );
        }
    }

    #[test]
    fn cost_error_constructors_and_display() {
        let t = CostError::transient("link dropped");
        let p = CostError::permanent("no such kernel");
        assert!(t.transient && !p.transient);
        assert!(t.to_string().contains("transient"), "{t}");
        assert!(p.to_string().contains("permanent"), "{p}");
    }

    #[test]
    fn trait_is_object_safe_and_deterministic() {
        let layer = resnet50().layer("ResNet.L5").unwrap().clone();
        let device = Device::mali_g72_hikey970();
        let b: Box<dyn ConvBackend> = Box::new(AclGemm::new());
        assert_eq!(b.latency_ms(&layer, &device), b.latency_ms(&layer, &device));
    }
}

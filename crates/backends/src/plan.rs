use std::fmt;

use pruneperf_gpusim::{JobChain, KernelDesc};

/// The outcome of planning one convolutional layer: the job chain a library
/// would dispatch plus a human-readable record of the decisions taken.
#[derive(Debug, Clone, PartialEq)]
pub struct DispatchPlan {
    backend: String,
    algorithm: String,
    chain: JobChain,
    notes: Vec<String>,
}

impl DispatchPlan {
    /// Creates a plan.
    pub fn new(backend: impl Into<String>, algorithm: impl Into<String>, chain: JobChain) -> Self {
        DispatchPlan {
            backend: backend.into(),
            algorithm: algorithm.into(),
            chain,
            notes: Vec::new(),
        }
    }

    /// Records a planner decision (visible in example output and tests).
    pub fn add_note(&mut self, note: impl Into<String>) {
        // lint: allow(grow) — plan builder: a handful of notes per plan, dropped with it
        self.notes.push(note.into());
    }

    /// Backend that produced the plan.
    pub fn backend(&self) -> &str {
        &self.backend
    }

    /// Algorithm chosen (e.g. `"implicit_gemm"`, `"winograd"`).
    pub fn algorithm(&self) -> &str {
        &self.algorithm
    }

    /// The jobs to dispatch, in order.
    pub fn chain(&self) -> &JobChain {
        &self.chain
    }

    /// Planner decision notes.
    pub fn notes(&self) -> &[String] {
        &self.notes
    }

    /// Kernels with the given name (e.g. counting `gemm_mm` splits).
    pub fn kernels_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a KernelDesc> {
        self.chain
            .jobs()
            .iter()
            .map(|j| j.kernel())
            .filter(move |k| k.name() == name)
    }
}

impl fmt::Display for DispatchPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} [{}]: {} job(s)",
            self.backend,
            self.algorithm,
            self.chain.len()
        )?;
        for job in self.chain.jobs() {
            writeln!(
                f,
                "  {}{}",
                job.kernel(),
                if job.needs_own_submission() {
                    "  (own submission)"
                } else {
                    ""
                }
            )?;
        }
        for note in &self.notes {
            writeln!(f, "  note: {note}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pruneperf_gpusim::KernelDesc;

    fn plan() -> DispatchPlan {
        let k = KernelDesc::builder("gemm_mm")
            .global([8, 1, 1])
            .local([4, 1, 1])
            .arith_per_item(10)
            .build();
        let mut p = DispatchPlan::new(
            "ACL GEMM",
            "gemm",
            JobChain::from_kernels(vec![k.clone(), k]),
        );
        p.add_note("split: 80 + 12 columns");
        p
    }

    #[test]
    fn accessors() {
        let p = plan();
        assert_eq!(p.backend(), "ACL GEMM");
        assert_eq!(p.algorithm(), "gemm");
        assert_eq!(p.chain().len(), 2);
        assert_eq!(p.kernels_named("gemm_mm").count(), 2);
        assert_eq!(p.kernels_named("im2col").count(), 0);
        assert_eq!(p.notes().len(), 1);
    }

    #[test]
    fn display_lists_jobs_and_notes() {
        let s = plan().to_string();
        assert!(s.contains("2 job(s)"));
        assert!(s.contains("split: 80 + 12 columns"));
    }
}

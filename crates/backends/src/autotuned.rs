//! Auto-tuned workgroup selection for the direct convolution — the
//! paper's explicitly deferred future work (§IV-B2: “Auto-tuning of the
//! workloads and examining the effects of scheduling and caching have been
//! left for future work”, referencing \[23\], which reports a 3.79× mean
//! speedup from auto-tuned OpenCL workgroup sizes).
//!
//! [`AclDirectTuned`] exhaustively measures a grid of candidate workgroup
//! shapes on the device model — exactly what an OpenCL auto-tuner does on
//! hardware — and dispatches with the fastest, instead of trusting ACL's
//! divisibility heuristic. The gain is largest exactly where the heuristic
//! fails: odd channel counts produced by uninstructed pruning.

use pruneperf_gpusim::{Device, Engine, JobChain};
use pruneperf_models::ConvLayerSpec;

use crate::acl_direct::AclDirect;
use crate::{ConvBackend, DispatchPlan};

/// Candidate workgroup x-extents (output pixels per row of the workgroup).
const X_CANDIDATES: [usize; 4] = [1, 2, 4, 8];
/// Candidate workgroup z-extents (output channels per workgroup).
const Z_CANDIDATES: [usize; 4] = [1, 2, 4, 8];

/// Direct convolution with auto-tuned workgroup sizes.
#[derive(Debug, Clone, Default)]
pub struct AclDirectTuned {
    _private: (),
}

impl AclDirectTuned {
    /// Creates the backend.
    pub fn new() -> Self {
        AclDirectTuned::default()
    }

    /// All candidate shapes for a layer (capped at 64 work-items, the
    /// common OpenCL device maximum on Mali). Always includes the ACL
    /// heuristic's own choice, so tuning can never lose to the default.
    pub fn candidates(layer: &ConvLayerSpec) -> Vec<[usize; 3]> {
        let mut shapes = vec![AclDirect::workgroup_for(layer.c_out())];
        for x in X_CANDIDATES {
            for z in Z_CANDIDATES {
                let shape = [x, 1, z];
                if x * z <= 64
                    && x <= layer.w_in()
                    && z <= layer.c_out()
                    && !shapes.contains(&shape)
                {
                    shapes.push(shape);
                }
            }
        }
        shapes
    }

    /// Measures every candidate and returns the fastest shape with its
    /// simulated time in µs.
    pub fn tune(layer: &ConvLayerSpec, device: &Device) -> ([usize; 3], f64) {
        let engine = Engine::new(device);
        let time = |wg| engine.kernel_time_us(&AclDirect::kernel_with_workgroup(layer, wg));
        // The candidate grid always opens with the library heuristic, so
        // the search folds from a seeded best infallibly; `<=` keeps
        // min_by's later-candidate-wins tie behavior.
        let heuristic = AclDirect::workgroup_for(layer.c_out());
        let mut best = (heuristic, time(heuristic));
        for wg in Self::candidates(layer).into_iter().skip(1) {
            let t = time(wg);
            if t <= best.1 {
                best = (wg, t);
            }
        }
        best
    }
}

impl ConvBackend for AclDirectTuned {
    fn name(&self) -> &str {
        "ACL Direct (tuned)"
    }

    fn plan(&self, layer: &ConvLayerSpec, device: &Device) -> DispatchPlan {
        let (wg, us) = Self::tune(layer, device);
        let kernel = AclDirect::kernel_with_workgroup(layer, wg);
        let mut plan = DispatchPlan::new(
            self.name(),
            "direct_autotuned",
            JobChain::from_kernels(vec![kernel]),
        );
        plan.add_note(format!(
            "auto-tuned workgroup {wg:?} ({us:.1} us) over {} candidates",
            Self::candidates(layer).len()
        ));
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pruneperf_models::resnet50;

    fn device() -> Device {
        Device::mali_g72_hikey970()
    }

    /// The tuned backend never loses to the heuristic (it searches a
    /// superset of the heuristic's shapes).
    #[test]
    fn never_slower_than_heuristic() {
        let d = device();
        let heuristic = AclDirect::new();
        let tuned = AclDirectTuned::new();
        for label in ["ResNet.L1", "ResNet.L14", "ResNet.L16"] {
            let base = resnet50().layer(label).unwrap().clone();
            for c in [base.c_out(), base.c_out() - 1, base.c_out() - 3] {
                let layer = base.with_c_out(c).unwrap();
                let t_h = heuristic.latency_ms(&layer, &d);
                let t_t = tuned.latency_ms(&layer, &d);
                assert!(
                    t_t <= t_h * 1.0001,
                    "{label}@{c}: tuned {t_t:.3} vs heuristic {t_h:.3}"
                );
            }
        }
    }

    /// The gain concentrates where the heuristic fails: odd channel counts
    /// on 1×1 layers (the paper's \[23\] reports up to ~3.8×).
    #[test]
    fn big_gain_on_odd_1x1_layers() {
        let d = device();
        let layer = resnet50()
            .layer("ResNet.L14")
            .unwrap()
            .with_c_out(401)
            .unwrap();
        let t_h = AclDirect::new().latency_ms(&layer, &d);
        let t_t = AclDirectTuned::new().latency_ms(&layer, &d);
        let speedup = t_h / t_t;
        assert!(
            (1.3..4.5).contains(&speedup),
            "autotuning speedup {speedup:.2} out of the [23]-style band"
        );
    }

    /// On stock multiples of 4 the heuristic is already near-optimal: the
    /// auto-tuner can still win a little (larger workgroups amortize launch
    /// overhead) but not dramatically.
    #[test]
    fn small_gain_on_stock_sizes() {
        let d = device();
        let layer = resnet50().layer("ResNet.L16").unwrap().clone();
        let t_h = AclDirect::new().latency_ms(&layer, &d);
        let t_t = AclDirectTuned::new().latency_ms(&layer, &d);
        let speedup = t_h / t_t;
        assert!(
            (1.0..1.5).contains(&speedup),
            "stock-size speedup {speedup:.2} should be modest"
        );
    }

    /// Tuning removes the three-level pattern: the curve becomes smooth in
    /// the channel count.
    #[test]
    fn tuned_curve_has_no_parity_levels() {
        let d = device();
        let tuned = AclDirectTuned::new();
        let base = resnet50().layer("ResNet.L14").unwrap().clone();
        let t400 = tuned.latency_ms(&base.with_c_out(400).unwrap(), &d);
        let t401 = tuned.latency_ms(&base.with_c_out(401).unwrap(), &d);
        let t402 = tuned.latency_ms(&base.with_c_out(402).unwrap(), &d);
        // Adjacent counts within a few percent of each other.
        assert!((t401 / t400 - 1.0).abs() < 0.1, "{t400} {t401}");
        assert!((t402 / t401 - 1.0).abs() < 0.1, "{t401} {t402}");
    }

    #[test]
    fn candidates_respect_layer_limits_and_include_the_heuristic() {
        let tiny = ConvLayerSpec::new("T", 1, 1, 0, 4, 2, 2, 2);
        let cands = AclDirectTuned::candidates(&tiny);
        // First entry is always the heuristic's own choice.
        assert_eq!(cands[0], AclDirect::workgroup_for(2));
        for wg in &cands[1..] {
            assert!(wg[0] <= 2 && wg[2] <= 2, "{wg:?}");
        }
    }
}

//! Arm Compute Library — Direct convolution method (§IV-A2, §IV-B2).
//!
//! One `direct_convolution{k}x{k}_nhwc` kernel computes each output element
//! in a deep nested loop — no im2col blow-up, which is why it is the only
//! option on tightly memory-limited devices, and also why it has no data
//! reuse and is generally the slowest method.
//!
//! # Workgroup-size heuristic (Table V)
//!
//! ACL selects the OpenCL workgroup shape from output-channel divisibility,
//! invisibly to the user:
//!
//! | condition        | workgroup  | observed behaviour                |
//! |------------------|------------|-----------------------------------|
//! | `c_out % 4 == 0` | `(4,1,1)`  | fast (Table V: 92 ch, 168.8)      |
//! | `c_out % 2 == 0` | `(2,1,8)`  | fast-ish (Table V: 90 ch, 167.9)  |
//! | odd              | `(1,1,8)`  | slow (Table V: 91/93 ch, ~200)    |
//!
//! The three shapes coalesce memory differently, and direct convolution is
//! memory-bound, so the curve shows **three alternating execution levels**
//! (Fig 12, up to 1.9× apart for 1×1 layers). Since every stock network
//! ships with channel counts divisible by 4, pruning a single channel drops
//! the layer onto the slow level — the up-to-5× prune-by-one slowdowns of
//! Fig 10 (“optimization heuristics in the ACL are tuned for the standard
//! shape of most popular neural networks”).

use pruneperf_gpusim::{Device, JobChain, KernelDesc};
use pruneperf_models::ConvLayerSpec;

use crate::{ConvBackend, DispatchPlan};

/// Scalar-equivalent instructions per multiply–accumulate in the nested
/// loop (loads are counted separately). Direct convolution carries far more
/// loop/addressing overhead per MAC than the blocked GEMM (§IV-A2:
/// “Direct Convolution is generally slower than all the other methods”).
const DIRECT_INSTR_PER_MAC: u64 = 20;

/// The ACL Direct convolution backend model.
#[derive(Debug, Clone, Default)]
pub struct AclDirect {
    _private: (),
}

impl AclDirect {
    /// Creates the backend model.
    pub fn new() -> Self {
        AclDirect::default()
    }

    /// The Table V workgroup-size heuristic.
    pub fn workgroup_for(c_out: usize) -> [usize; 3] {
        if c_out.is_multiple_of(4) {
            [4, 1, 1]
        } else if c_out.is_multiple_of(2) {
            [2, 1, 8]
        } else {
            [1, 1, 8]
        }
    }

    /// Memory-coalescing efficiency of a workgroup shape for a layer.
    ///
    /// Below ~32 output channels the channel loop cannot be vectorized and
    /// the strided NHWC input gathers stop coalescing, which is what caps
    /// the speedup from extreme pruning around 15–17× in Figs 10/11 (work
    /// drops linearly with channels, memory time does not).
    pub(crate) fn coalescing_for(layer: &ConvLayerSpec, wg: [usize; 3]) -> f64 {
        let narrow_gather = 0.35 + 0.65 * (layer.c_out() as f64 / 32.0).min(1.0);
        let one_by_one = layer.kernel() == 1;
        narrow_gather
            // lint: allow(index) — wg is [usize; 3]; a constant index is compile-checked
            * match wg[0] {
                x if x >= 4 => 0.95,
                2 => {
                    if one_by_one {
                        0.70
                    } else {
                        0.90
                    }
                }
                _ => {
                    if one_by_one {
                        0.50
                    } else {
                        0.75
                    }
                }
            }
    }

    /// Issue efficiency of a workgroup shape for a layer.
    ///
    /// 3×3+ kernels lose little to the shape choice (the ~1.2× of Table V);
    /// 1×1 kernels rely on vec4 channel loads that the `(2,1,8)`/`(1,1,8)`
    /// fallbacks cannot issue, producing the up-to-1.9× levels of Fig 12.
    /// Narrow layers degrade further on the scalar path: with few input
    /// channels the inner loop is too short to amortize per-iteration
    /// overhead (Fig 10's 0.2–0.3× prune-by-one cells are all early 1×1
    /// layers).
    pub(crate) fn exec_efficiency_for(layer: &ConvLayerSpec, wg: [usize; 3]) -> f64 {
        let one_by_one = layer.kernel() == 1;
        // lint: allow(index) — wg is [usize; 3]; a constant index is compile-checked
        let base = match wg[0] {
            x if x >= 4 => 1.0,
            2 => {
                if one_by_one {
                    0.72
                } else {
                    0.95
                }
            }
            _ => {
                if one_by_one {
                    0.52
                } else {
                    0.83
                }
            }
        };
        // lint: allow(index) — wg is [usize; 3]; a constant index is compile-checked
        if wg[0] == 1 && one_by_one {
            let narrowness = (layer.c_in() as f64 / 256.0).min(1.0);
            base * (0.45 + 0.55 * narrowness)
        } else {
            base
        }
    }

    /// Cache behaviour of the nested loop: weights are reused across output
    /// pixels (high hit rate), and input patches are re-read once per
    /// output channel, so the more channels survive, the more of those
    /// reads hit in L2. This is what saturates the achievable speedup —
    /// pruning removes arithmetic linearly but barely reduces DRAM traffic
    /// (Figs 10/11 top out around 15×, not at the channel ratio).
    fn cache_hit_for(layer: &ConvLayerSpec) -> f64 {
        let weight_hit = if layer.kernel() > 1 { 0.90 } else { 0.85 };
        let input_hit = 1.0 - 1.0 / (layer.c_out().min(64) as f64);
        (weight_hit + input_hit) / 2.0
    }
}

impl AclDirect {
    /// Builds the direct-convolution kernel for an explicit workgroup shape
    /// (used both by the heuristic plan and by [`crate::AclDirectTuned`]'s
    /// exhaustive search).
    pub(crate) fn kernel_with_workgroup(layer: &ConvLayerSpec, wg: [usize; 3]) -> KernelDesc {
        let (out_h, out_w) = layer.out_hw();
        let taps = layer.taps();
        let coalescing = Self::coalescing_for(layer, wg);
        KernelDesc::builder(format!(
            "direct_convolution{k}x{k}_nhwc",
            k = layer.kernel()
        ))
        .global([out_w, out_h, layer.c_out()])
        .local(wg)
        // Every output element runs the full nested loop.
        .arith_per_item(taps as u64 * DIRECT_INSTR_PER_MAC)
        // One input read and one weight read per tap.
        .mem_per_item(2 * taps as u64)
        .cache_hit(Self::cache_hit_for(layer))
        .coalescing(coalescing)
        .exec_efficiency(Self::exec_efficiency_for(layer, wg))
        // Edge lanes are predicated off: instruction counts track the
        // active NDRange (Table V: ~1% growth per added channel).
        .padded_accounting(false)
        .footprint_bytes(
            ((layer.h_in() * layer.w_in() * layer.c_in()
                + taps * layer.c_out()
                + out_h * out_w * layer.c_out())
                * 4) as u64,
        )
        .build()
    }
}

impl ConvBackend for AclDirect {
    fn name(&self) -> &str {
        "ACL Direct"
    }

    fn plan(&self, layer: &ConvLayerSpec, _device: &Device) -> DispatchPlan {
        let wg = Self::workgroup_for(layer.c_out());
        let kernel = Self::kernel_with_workgroup(layer, wg);
        let mut plan =
            DispatchPlan::new(self.name(), "direct", JobChain::from_kernels(vec![kernel]));
        plan.add_note(format!(
            "workgroup {wg:?} selected for c_out={} (divisibility heuristic)",
            layer.c_out()
        ));
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pruneperf_models::resnet50;

    fn device() -> Device {
        Device::mali_g72_hikey970()
    }

    #[test]
    fn table5_workgroup_selection() {
        // Table V: 90 -> 2x1x8, 91 -> 1x1x8, 92 -> 4x1x1, 93 -> 1x1x8.
        assert_eq!(AclDirect::workgroup_for(90), [2, 1, 8]);
        assert_eq!(AclDirect::workgroup_for(91), [1, 1, 8]);
        assert_eq!(AclDirect::workgroup_for(92), [4, 1, 1]);
        assert_eq!(AclDirect::workgroup_for(93), [1, 1, 8]);
    }

    #[test]
    fn single_kernel_single_job() {
        let layer = resnet50().layer("ResNet.L16").unwrap().clone();
        let plan = AclDirect::new().plan(&layer, &device());
        assert_eq!(plan.chain().len(), 1);
        assert_eq!(
            plan.chain().jobs()[0].kernel().name(),
            "direct_convolution3x3_nhwc"
        );
    }

    /// Table V's runtime ordering for a 3×3 layer: even channel counts are
    /// close (≤ ~5% apart), odd ones ~1.1–1.4× slower.
    #[test]
    fn table5_three_levels_for_3x3() {
        let d = device();
        let b = AclDirect::new();
        let l16 = resnet50().layer("ResNet.L16").unwrap().clone();
        let t90 = b.latency_ms(&l16.with_c_out(90).unwrap(), &d);
        let t91 = b.latency_ms(&l16.with_c_out(91).unwrap(), &d);
        let t92 = b.latency_ms(&l16.with_c_out(92).unwrap(), &d);
        let t93 = b.latency_ms(&l16.with_c_out(93).unwrap(), &d);
        assert!((t90 / t92 - 1.0).abs() < 0.12, "t90 {t90:.3} t92 {t92:.3}");
        for (odd, even) in [(t91, t90), (t93, t92)] {
            let ratio = odd / even;
            assert!(
                (1.05..1.6).contains(&ratio),
                "odd/even ratio {ratio:.2} out of Table V band"
            );
        }
    }

    /// Fig 12: 1×1 layers show three levels spread up to ~1.9×.
    #[test]
    fn fig12_levels_for_1x1() {
        let d = device();
        let b = AclDirect::new();
        let l14 = resnet50().layer("ResNet.L14").unwrap().clone();
        let t_mult4 = b.latency_ms(&l14.with_c_out(400).unwrap(), &d);
        let t_mult2 = b.latency_ms(&l14.with_c_out(402).unwrap(), &d);
        let t_odd = b.latency_ms(&l14.with_c_out(401).unwrap(), &d);
        assert!(t_mult4 < t_mult2 && t_mult2 < t_odd);
        let spread = t_odd / t_mult4;
        assert!(
            (1.5..2.4).contains(&spread),
            "level spread {spread:.2} (paper: up to 1.9x)"
        );
    }

    /// Fig 10: pruning one channel from a stock (multiple-of-4) size drops
    /// onto the slow level — a slowdown, not a speedup.
    #[test]
    fn prune_by_one_hurts() {
        let d = device();
        let b = AclDirect::new();
        for label in ["ResNet.L1", "ResNet.L3", "ResNet.L16"] {
            let layer = resnet50().layer(label).unwrap().clone();
            let t0 = b.latency_ms(&layer, &d);
            let t1 = b.latency_ms(&layer.pruned_by(1).unwrap(), &d);
            assert!(
                t1 > t0,
                "{label}: prune-by-1 should slow down ({t1:.3} vs {t0:.3})"
            );
        }
    }

    /// Narrow early 1×1 layers suffer the worst prune-by-one penalty
    /// (Fig 10 shows 0.2–0.3x for L1/L3/L5 vs ~0.5x for later layers).
    #[test]
    fn narrow_layers_suffer_more() {
        let d = device();
        let b = AclDirect::new();
        let l1 = resnet50().layer("ResNet.L1").unwrap().clone(); // c_in 64
        let l47 = resnet50().layer("ResNet.L47").unwrap().clone(); // c_in 2048
        let slow1 = b.latency_ms(&l1.pruned_by(1).unwrap(), &d) / b.latency_ms(&l1, &d);
        let slow47 = b.latency_ms(&l47.pruned_by(1).unwrap(), &d) / b.latency_ms(&l47, &d);
        assert!(
            slow1 > slow47,
            "narrow L1 penalty {slow1:.2} should exceed wide L47 penalty {slow47:.2}"
        );
        assert!(
            slow1 > 2.0,
            "L1 penalty {slow1:.2} (paper: ~0.2x speedup = 5x)"
        );
    }

    /// Direct convolution is slower than the same layer via ACL GEMM
    /// (§IV-A2: “Direct Convolution is generally slower than all the other
    /// methods”).
    #[test]
    fn direct_is_slower_than_gemm() {
        use crate::AclGemm;
        let d = device();
        let l16 = resnet50().layer("ResNet.L16").unwrap().clone();
        let t_direct = AclDirect::new().latency_ms(&l16, &d);
        let t_gemm = AclGemm::new().latency_ms(&l16, &d);
        assert!(
            t_direct > t_gemm * 1.5,
            "direct {t_direct:.2} vs gemm {t_gemm:.2}"
        );
    }
}

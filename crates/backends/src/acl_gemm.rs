//! Arm Compute Library — GEMM convolution method (§IV-A3, §IV-B1).
//!
//! The planner lowers a convolution into the three-kernel chain the paper's
//! OpenCL interceptor observes on ACL v19.02:
//!
//! 1. `im2col{k}x{k}_nhwc` — unrolls input patches (skipped for 1×1
//!    stride-1 layers, where the input already is the patch matrix);
//! 2. `reshape_to_columns` — re-tiles the patch matrix for the GEMM's
//!    column-major consumption (its cost depends on `M×K` only, which is
//!    why Tables I–IV show it constant while output channels vary);
//! 3. one **or two** `gemm_mm` kernels, per the split heuristic below.
//!
//! # The split heuristic (reverse-engineered from Tables I–IV)
//!
//! `gemm_mm` consumes output channels in vec4 column groups and tiles them
//! in macro-tiles of 8 columns. Let `c4 = round_up(c_out, 4)`:
//!
//! * `c4 % 8 == 0` → a single `gemm_mm` over `c4` columns (padded);
//! * otherwise the OpenCL runtime splits the work: a main kernel over
//!   `floor(c_out / 16) * 16` columns plus a **separately submitted**
//!   remainder kernel over the rest (rounded up to 4).
//!
//! This reproduces the paper's observations exactly: 92 channels → 80 + 12
//! columns (Tables I, the remainder being “only 13% of the computation”),
//! 97 channels → 96 + 4 (Table IV), while 93–96 run as a single 96-column
//! kernel (Tables II–III). The extra job costs CPU↔GPU communication and
//! initialization (Fig 18) — the slow parallel staircase of Figs 3/14/15.

use pruneperf_gpusim::{Device, Job, JobChain, KernelDesc};
use pruneperf_models::ConvLayerSpec;

use crate::{ConvBackend, DispatchPlan};

/// Per-4×4-tile `gemm_mm` cost model, calibrated so the executed-instruction
/// counts for ResNet-50 layer 16 match the paper's Tables I–IV *exactly*:
/// one work-item produces a 4-row × 4-column tile and retires
/// `(313·K − 8) / 2` scalar-equivalent arithmetic and `8·K + 36` memory
/// instructions (`K = kh·kw·c_in`).
fn gemm_arith_per_item(k_dim: usize) -> u64 {
    (313 * k_dim as u64).saturating_sub(8) / 2
}

/// See [`gemm_arith_per_item`].
fn gemm_mem_per_item(k_dim: usize) -> u64 {
    8 * k_dim as u64 + 36
}

/// The ACL GEMM convolution backend model.
#[derive(Debug, Clone, Default)]
pub struct AclGemm {
    _private: (),
}

/// How `gemm_mm` columns are covered for a given channel count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ColumnSplit {
    /// One kernel covering `cols` (channel count padded to vec4).
    Single {
        /// Padded column count.
        cols: usize,
    },
    /// Main kernel + separately submitted remainder kernel.
    Split {
        /// Columns of the main kernel (multiple of 16).
        main: usize,
        /// Columns of the remainder kernel (4, 8 or 12).
        rem: usize,
    },
}

impl AclGemm {
    /// Creates the backend model.
    pub fn new() -> Self {
        AclGemm::default()
    }

    /// The split decision for `c_out` output channels.
    pub(crate) fn column_split(c_out: usize) -> ColumnSplit {
        let c4 = c_out.div_ceil(4) * 4;
        if c4.is_multiple_of(8) {
            return ColumnSplit::Single { cols: c4 };
        }
        let main = (c_out / 16) * 16;
        if main == 0 {
            return ColumnSplit::Single { cols: c4 };
        }
        ColumnSplit::Split {
            main,
            rem: c4 - main,
        }
    }

    fn im2col_kernel(layer: &ConvLayerSpec) -> KernelDesc {
        let (out_h, out_w) = layer.out_hw();
        let k_dim = layer.taps();
        KernelDesc::builder(format!("im2col{k}x{k}_nhwc", k = layer.kernel()))
            .global([out_w, out_h, 1])
            .local([4, 2, 1])
            .arith_per_item((3 * k_dim as u64).div_ceil(2))
            .mem_per_item((k_dim as u64).div_ceil(4))
            .bytes_per_mem(16)
            .cache_hit(0.3)
            .coalescing(0.9)
            .footprint_bytes((out_h * out_w * k_dim * 4) as u64)
            .build()
    }

    fn reshape_kernel(layer: &ConvLayerSpec) -> KernelDesc {
        let (out_h, out_w) = layer.out_hw();
        let m = out_h * out_w;
        let k_dim = layer.taps();
        KernelDesc::builder("reshape_to_columns")
            .global([m.div_ceil(4), k_dim.div_ceil(4), 1])
            .local([4, 2, 1])
            .arith_per_item(783)
            .mem_per_item(64)
            .cache_hit(0.4)
            .coalescing(0.95)
            .footprint_bytes((m * k_dim * 4) as u64)
            .build()
    }

    /// Issue efficiency of `gemm_mm` under a split: losing the 8-column
    /// macro-tile forces the narrow schedule on the main kernel and leaves
    /// the remainder kernel with almost no parallelism. Combined with the
    /// extra job's dispatch/sync cost this is the slow parallel staircase —
    /// and because it scales with the kernel's own work, small layers pay
    /// proportionally (Fig 1 tops out near 2x, not higher).
    const SPLIT_MAIN_EFFICIENCY: f64 = 0.55;
    const SPLIT_REMAINDER_EFFICIENCY: f64 = 0.60;

    fn gemm_kernel(
        layer: &ConvLayerSpec,
        cols: usize,
        split: bool,
        is_remainder: bool,
    ) -> KernelDesc {
        let (out_h, out_w) = layer.out_hw();
        let m = out_h * out_w;
        let k_dim = layer.taps();
        let col_quads = cols / 4;
        // Up to 4 column-quads per workgroup, but the shape must tile the
        // NDRange exactly: a quad count like 26 (c_out 101 → 104 padded
        // columns) is not a multiple of 4, and a 4-high workgroup would
        // either drop the last two quads or pad into columns that do not
        // exist. Take the largest height that divides the quad count.
        let local_y = (1..=col_quads.min(4))
            .rev()
            .find(|d| col_quads.is_multiple_of(*d))
            .unwrap_or(1);
        KernelDesc::builder("gemm_mm")
            .global([m.div_ceil(4), col_quads, 1])
            .local([4, local_y, 1])
            .arith_per_item(gemm_arith_per_item(k_dim))
            .mem_per_item(gemm_mem_per_item(k_dim))
            .cache_hit(0.75)
            .coalescing(1.0)
            .exec_efficiency(match (split, is_remainder) {
                (_, true) => Self::SPLIT_REMAINDER_EFFICIENCY,
                (true, false) => Self::SPLIT_MAIN_EFFICIENCY,
                (false, false) => 1.0,
            })
            .footprint_bytes(((m * k_dim + k_dim * cols + m * cols) * 4) as u64)
            .build()
    }
}

impl ConvBackend for AclGemm {
    fn name(&self) -> &str {
        "ACL GEMM"
    }

    fn plan(&self, layer: &ConvLayerSpec, _device: &Device) -> DispatchPlan {
        let mut chain = JobChain::new();
        // 1×1 stride-1 layers read the input as the patch matrix directly.
        if layer.kernel() > 1 || layer.stride() > 1 {
            chain.push(Job::new(Self::im2col_kernel(layer)));
        }
        chain.push(Job::new(Self::reshape_kernel(layer)));

        let split = Self::column_split(layer.c_out());
        let mut plan = match split {
            ColumnSplit::Single { cols } => {
                chain.push(Job::new(Self::gemm_kernel(layer, cols, false, false)));
                let mut p = DispatchPlan::new(self.name(), "gemm", chain);
                p.add_note(format!(
                    "single gemm_mm over {cols} columns (c_out={})",
                    layer.c_out()
                ));
                p
            }
            ColumnSplit::Split { main, rem } => {
                chain.push(Job::new(Self::gemm_kernel(layer, main, true, false)));
                chain.push(Job::with_own_submission(Self::gemm_kernel(
                    layer, rem, true, true,
                )));
                let mut p = DispatchPlan::new(self.name(), "gemm", chain);
                p.add_note(format!(
                    "split gemm_mm: {main} + {rem} columns (c_out={}); remainder needs own submission",
                    layer.c_out()
                ));
                p
            }
        };
        plan.add_note(format!("layer {layer}"));
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pruneperf_gpusim::Engine;
    use pruneperf_models::resnet50;

    fn l16(c_out: usize) -> ConvLayerSpec {
        resnet50()
            .layer("ResNet.L16")
            .unwrap()
            .with_c_out(c_out)
            .unwrap()
    }

    fn device() -> Device {
        Device::mali_g72_hikey970()
    }

    #[test]
    fn split_heuristic_matches_tables() {
        // Tables I–IV: 92 -> 80+12; 93..96 -> single 96; 97 -> 96+4.
        assert_eq!(
            AclGemm::column_split(92),
            ColumnSplit::Split { main: 80, rem: 12 }
        );
        for c in 93..=96 {
            assert_eq!(AclGemm::column_split(c), ColumnSplit::Single { cols: 96 });
        }
        assert_eq!(
            AclGemm::column_split(97),
            ColumnSplit::Split { main: 96, rem: 4 }
        );
        // Fig 14: 76 slow, 78 fast.
        assert_eq!(
            AclGemm::column_split(76),
            ColumnSplit::Split { main: 64, rem: 12 }
        );
        assert_eq!(AclGemm::column_split(78), ColumnSplit::Single { cols: 80 });
        // Fig 15: 2024 fast, 2036 slow.
        assert_eq!(
            AclGemm::column_split(2024),
            ColumnSplit::Single { cols: 2024 }
        );
        assert_eq!(
            AclGemm::column_split(2036),
            ColumnSplit::Split { main: 2032, rem: 4 }
        );
        // Tiny layers never split.
        assert_eq!(AclGemm::column_split(13), ColumnSplit::Single { cols: 16 });
    }

    /// The headline fidelity check: executed gemm_mm instruction counts for
    /// ResNet-50 L16 match the paper's Tables I–IV exactly.
    #[test]
    fn tables_1_to_4_gemm_instruction_counts_exact() {
        let d = device();
        let e = Engine::new(&d);
        let expect = [
            // (c_out, [(arith, mem), ...]) for the gemm_mm kernels.
            (
                92,
                vec![(706_713_280, 36_267_840), (106_006_992, 5_440_176)],
            ),
            (93, vec![(848_055_936, 43_521_408)]),
            (96, vec![(848_055_936, 43_521_408)]),
            (97, vec![(848_055_936, 43_521_408), (35_335_664, 1_813_392)]),
        ];
        for (c, gemms) in expect {
            let plan = AclGemm::new().plan(&l16(c), &d);
            let report = e.run_chain(plan.chain());
            let got: Vec<(u64, u64)> = report
                .kernels_named("gemm_mm")
                .map(|k| (k.arith_instructions, k.mem_instructions))
                .collect();
            assert_eq!(got, gemms, "c_out = {c}");
        }
    }

    #[test]
    fn chain_structure_matches_interceptor() {
        let d = device();
        let plan = AclGemm::new().plan(&l16(96), &d);
        let names: Vec<&str> = plan
            .chain()
            .jobs()
            .iter()
            .map(|j| j.kernel().name())
            .collect();
        assert_eq!(names, ["im2col3x3_nhwc", "reshape_to_columns", "gemm_mm"]);
        let plan92 = AclGemm::new().plan(&l16(92), &d);
        assert_eq!(plan92.chain().len(), 4);
        assert!(plan92.chain().jobs()[3].needs_own_submission());
    }

    #[test]
    fn reshape_is_constant_in_c_out() {
        let d = device();
        let e = Engine::new(&d);
        let arith: Vec<u64> = [92, 93, 96, 97]
            .into_iter()
            .map(|c| {
                let plan = AclGemm::new().plan(&l16(c), &d);
                e.run_chain(plan.chain())
                    .kernels_named("reshape_to_columns")
                    .map(|k| k.arith_instructions)
                    .sum()
            })
            .collect();
        assert!(arith.windows(2).all(|w| w[0] == w[1]), "{arith:?}");
        // And close to the paper's 44,183,104 (within 1%).
        let paper = 44_183_104f64;
        assert!(
            (arith[0] as f64 - paper).abs() / paper < 0.01,
            "reshape arith {} vs paper {paper}",
            arith[0]
        );
    }

    #[test]
    fn one_by_one_stride_one_skips_im2col() {
        let d = device();
        let l45 = resnet50().layer("ResNet.L45").unwrap().clone();
        let plan = AclGemm::new().plan(&l45, &d);
        assert!(plan.kernels_named("im2col1x1_nhwc").next().is_none());
        // The strided 1x1 projection still needs the gather.
        let l14 = resnet50().layer("ResNet.L14").unwrap().clone();
        let plan14 = AclGemm::new().plan(&l14, &d);
        assert!(plan14.kernels_named("im2col1x1_nhwc").next().is_some());
    }

    /// The two parallel staircases: split configurations run materially
    /// slower than adjacent non-split ones despite doing *less* arithmetic.
    #[test]
    fn split_is_slower_despite_less_work() {
        let d = device();
        let b = AclGemm::new();
        let t92 = b.latency_ms(&l16(92), &d);
        let t96 = b.latency_ms(&l16(96), &d);
        assert!(
            t92 > t96 * 1.4,
            "92ch should be >=1.4x slower than 96ch: {t92:.2} vs {t96:.2}"
        );
        // Paper: 1.64x (23 ms vs 14 ms); allow a band.
        assert!(t92 / t96 < 2.6, "ratio {:.2}", t92 / t96);
    }

    /// Fig 14's 76 -> 78 channel jump: 1.83x in the paper.
    #[test]
    fn fig14_jump_76_to_78() {
        let d = device();
        let b = AclGemm::new();
        let t76 = b.latency_ms(&l16(76), &d);
        let t78 = b.latency_ms(&l16(78), &d);
        let ratio = t76 / t78;
        assert!(
            (1.3..3.0).contains(&ratio),
            "76/78 ratio {ratio:.2} out of band (paper: 1.83)"
        );
    }

    /// Remainder-kernel math over every `c_out % 8` residue class.
    ///
    /// `gemm_kernel` derives its NDRange as `cols / 4` — integer division
    /// that silently drops columns if a split ever produced a `cols` that
    /// is not a multiple of 4. Sweep all eight residue classes (plus the
    /// class boundaries the paper's tables pin down) and prove, for every
    /// one, that the dispatched workgroups cover exactly the padded
    /// column count: no dropped work, no double-covered columns.
    #[test]
    fn every_residue_class_conserves_gemm_columns() {
        let d = device();
        let b = AclGemm::new();
        // 89..=104 covers each residue of both c_out % 8 and c_out % 16;
        // the extras are boundary cases: the minimum split (17), tiny
        // layers that must not split, and the layer's full 128 channels.
        let cases: Vec<usize> = (89..=104).chain([1, 4, 13, 16, 17, 128]).collect();
        for c_out in cases {
            let c4 = c_out.div_ceil(4) * 4;
            let plan = b.plan(&l16(c_out), &d);
            let gemms: Vec<_> = plan
                .chain()
                .jobs()
                .iter()
                .filter(|j| j.kernel().name() == "gemm_mm")
                .collect();
            let mut covered = 0usize;
            for job in &gemms {
                let k = job.kernel();
                let cols = k.global()[1] * 4;
                // Column counts stay vec4-aligned, so `cols / 4` is exact.
                assert_eq!(cols % 4, 0, "c_out={c_out}: non-vec4 kernel");
                assert!(cols > 0, "c_out={c_out}: empty gemm dispatch");
                // Workgroup shape divides the NDRange (the TA002 invariant).
                for axis in 0..3 {
                    assert_eq!(
                        k.global()[axis] % k.local()[axis].max(1),
                        0,
                        "c_out={c_out}: local {:?} does not tile global {:?}",
                        k.local(),
                        k.global()
                    );
                }
                covered += cols;
            }
            assert_eq!(
                covered, c4,
                "c_out={c_out}: dispatched columns must cover the padded count exactly"
            );
            match AclGemm::column_split(c_out) {
                ColumnSplit::Single { cols } => {
                    assert_eq!(gemms.len(), 1, "c_out={c_out}");
                    assert_eq!(gemms[0].kernel().global()[1] * 4, cols);
                    assert!(!gemms[0].needs_own_submission(), "c_out={c_out}");
                }
                ColumnSplit::Split { main, rem } => {
                    assert_eq!(gemms.len(), 2, "c_out={c_out}");
                    assert_eq!(main % 16, 0, "c_out={c_out}: main not tile-aligned");
                    assert!(
                        rem == 4 || rem == 8 || rem == 12,
                        "c_out={c_out}: remainder {rem} outside a macro-tile"
                    );
                    assert_eq!(gemms[0].kernel().global()[1] * 4, main);
                    assert_eq!(gemms[1].kernel().global()[1] * 4, rem);
                    assert!(
                        gemms[1].needs_own_submission(),
                        "c_out={c_out}: remainder must be separately submitted"
                    );
                    // The remainder's short columns shrink its workgroup.
                    assert_eq!(gemms[1].kernel().local()[1], (rem / 4).min(4));
                }
            }
        }
    }

    /// No slowdown in the immediate vicinity of stock channel counts
    /// (§IV-A3: unlike Direct, “there is no slowdown in the vicinity of the
    /// initial number of channels”). Stock counts are multiples of 64;
    /// pruning one channel keeps c4 % 8 == 0.
    #[test]
    fn prune_by_one_from_stock_sizes_never_splits() {
        for c0 in [64usize, 128, 256, 512, 1024, 2048] {
            assert!(
                matches!(AclGemm::column_split(c0 - 1), ColumnSplit::Single { .. }),
                "c_out {} should not split",
                c0 - 1
            );
        }
    }
}

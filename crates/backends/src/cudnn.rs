//! cuDNN (v7) forward-convolution model for the Jetson devices (§IV-A1).
//!
//! cuDNN tiles the implicit GEMM over 32×32 output tiles (32 spatial rows ×
//! 32 output channels) and schedules whole *waves* of thread blocks onto
//! the device's SMs — 2 on the TX2, 1 on the Nano. Inference time therefore
//! moves in flat steps of 32 channels with wave-quantized heights: exactly
//! the monotone staircases of Figs 2, 4, 5 and 7, including the 1.3× jump
//! between 96 and 97 channels of ResNet-50 layer 16 (25 M-tiles × 3 vs 4
//! N-tiles over 2 SMs ⇒ 38 vs 50 waves).
//!
//! Like `cudnnFindConvolutionForwardAlgorithm`, the planner *measures* its
//! candidate algorithms on the device model and picks the fastest:
//!
//! * `IMPLICIT_GEMM` — always available;
//! * `IMPLICIT_PRECOMP_GEMM` — precomputes gather indices in a small setup
//!   kernel; clearly better for 1×1 layers (no on-the-fly unrolling);
//! * `WINOGRAD` — considered for 3×3 stride-1 layers with ≥ 256 input
//!   channels (the regime where cuDNN v7's Winograd kernels apply).

use pruneperf_gpusim::{Device, Engine, Job, JobChain, KernelDesc};
use pruneperf_models::ConvLayerSpec;

use crate::{ConvBackend, DispatchPlan};

/// Output-channel tile width — the source of the 32-channel staircase.
const N_TILE: usize = 32;
/// Spatial tile height (rows of the im2col matrix per thread block).
const M_TILE: usize = 32;
/// Scalar-equivalent instructions per MAC in the GEMM inner loop.
const INSTR_PER_MAC: u64 = 10;

/// Forward algorithms the selector considers (cuDNN v7 naming).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CudnnAlgorithm {
    /// `CUDNN_CONVOLUTION_FWD_ALGO_IMPLICIT_GEMM`.
    ImplicitGemm,
    /// `CUDNN_CONVOLUTION_FWD_ALGO_IMPLICIT_PRECOMP_GEMM`.
    ImplicitPrecompGemm,
    /// `CUDNN_CONVOLUTION_FWD_ALGO_WINOGRAD`.
    Winograd,
}

impl CudnnAlgorithm {
    fn name(self) -> &'static str {
        match self {
            CudnnAlgorithm::ImplicitGemm => "implicit_gemm",
            CudnnAlgorithm::ImplicitPrecompGemm => "implicit_precomp_gemm",
            CudnnAlgorithm::Winograd => "winograd",
        }
    }
}

/// The cuDNN backend model.
///
/// ```
/// use pruneperf_backends::{ConvBackend, Cudnn};
/// use pruneperf_gpusim::Device;
/// use pruneperf_models::resnet50;
///
/// let layer = resnet50().layer("ResNet.L16").unwrap().clone();
/// let tx2 = Device::jetson_tx2();
/// let b = Cudnn::new();
/// // Flat 32-channel steps: 97..128 all cost the same.
/// let t128 = b.latency_ms(&layer, &tx2);
/// let t97 = b.latency_ms(&layer.with_c_out(97).unwrap(), &tx2);
/// assert!((t128 / t97 - 1.0).abs() < 0.02);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Cudnn {
    _private: (),
}

impl Cudnn {
    /// Creates the backend model.
    pub fn new() -> Self {
        Cudnn::default()
    }

    /// Candidate algorithms for a layer (availability rules).
    pub fn candidates(layer: &ConvLayerSpec) -> Vec<CudnnAlgorithm> {
        let mut c = vec![
            CudnnAlgorithm::ImplicitGemm,
            CudnnAlgorithm::ImplicitPrecompGemm,
        ];
        if layer.kernel() == 3 && layer.stride() == 1 && layer.c_in() >= 256 {
            c.push(CudnnAlgorithm::Winograd);
        }
        c
    }

    fn gemm_chain(layer: &ConvLayerSpec, algo: CudnnAlgorithm) -> JobChain {
        let (out_h, out_w) = layer.out_hw();
        let m = out_h * out_w;
        let k_dim = layer.taps();
        let m_tiles = m.div_ceil(M_TILE);
        let n_tiles = layer.c_out().div_ceil(N_TILE);
        let (eff, kernel_name) = match (algo, layer.kernel()) {
            (CudnnAlgorithm::ImplicitGemm, _) => (0.35, "implicit_gemm_conv"),
            (CudnnAlgorithm::ImplicitPrecompGemm, 1) => (0.70, "implicit_precomp_gemm_conv"),
            (CudnnAlgorithm::ImplicitPrecompGemm, _) => (0.38, "implicit_precomp_gemm_conv"),
            // lint: allow(panic) — winograd is routed to its own chain before this match
            (CudnnAlgorithm::Winograd, _) => unreachable!("winograd uses its own chain"),
        };
        let mut chain = JobChain::new();
        if algo == CudnnAlgorithm::ImplicitPrecompGemm {
            chain.push(Job::new(
                KernelDesc::builder("precomp_indices")
                    .global([m_tiles, 1, 1])
                    .local([32, 1, 1])
                    .arith_per_item(64)
                    .mem_per_item(16)
                    // The precomputed gather-index table: one offset per
                    // im2col row strip.
                    .footprint_bytes((m_tiles * M_TILE * 4) as u64)
                    .build(),
            ));
        }
        // One thread computes a 32-row strip of one output-channel column;
        // a block covers a 32x32 tile.
        chain.push(Job::new(
            KernelDesc::builder(kernel_name)
                .global([32, m_tiles, n_tiles])
                .local([32, 1, 1])
                .arith_per_item(M_TILE as u64 * k_dim as u64 * INSTR_PER_MAC)
                .mem_per_item(2 * k_dim as u64)
                .cache_hit(0.8)
                .coalescing(0.95)
                .exec_efficiency(eff)
                .footprint_bytes(
                    ((layer.h_in() * layer.w_in() * layer.c_in()
                        + k_dim * layer.c_out()
                        + m * layer.c_out())
                        * 4) as u64,
                )
                .build(),
        ));
        chain
    }

    fn winograd_chain(layer: &ConvLayerSpec) -> JobChain {
        let (out_h, out_w) = layer.out_hw();
        let tiles = out_h.div_ceil(2) * out_w.div_ceil(2);
        let c_in = layer.c_in();
        let c_out = layer.c_out();
        // F(2x2, 3x3): each tile transforms to a 4x4 patch, so the
        // transformed domain holds 16 floats per (tile, channel) pair.
        let input_bytes = (layer.h_in() * layer.w_in() * c_in * 4) as u64;
        let domain_in_bytes = (16 * tiles * c_in * 4) as u64;
        let domain_out_bytes = (16 * tiles * c_out * 4) as u64;
        let weights_bytes = (16 * c_in * c_out * 4) as u64;
        let transform_in = KernelDesc::builder("winograd_transform_input")
            .global([tiles, c_in.div_ceil(4), 1])
            .local([32, 1, 1])
            .arith_per_item(4 * 64)
            .mem_per_item(4 * 32)
            .cache_hit(0.5)
            .footprint_bytes(input_bytes + domain_in_bytes)
            .build();
        // 16 independent batched GEMMs over the transformed domain; channel
        // tiling stays at 32 so the staircase step width is unchanged.
        let gemm = KernelDesc::builder("winograd_batched_gemm")
            .global([tiles.div_ceil(4), c_out.div_ceil(N_TILE) * (N_TILE / 4), 16])
            .local([32, 1, 1])
            .arith_per_item(16 * c_in as u64 * 12)
            .mem_per_item(2 * c_in as u64)
            .cache_hit(0.75)
            .exec_efficiency(0.30)
            .footprint_bytes(domain_in_bytes + weights_bytes + domain_out_bytes)
            .build();
        let transform_out = KernelDesc::builder("winograd_transform_output")
            .global([tiles, c_out.div_ceil(4), 1])
            .local([32, 1, 1])
            .arith_per_item(4 * 48)
            .mem_per_item(4 * 20)
            .cache_hit(0.5)
            .footprint_bytes(domain_out_bytes + (out_h * out_w * c_out * 4) as u64)
            .build();
        JobChain::from_kernels(vec![transform_in, gemm, transform_out])
    }

    fn chain_for(layer: &ConvLayerSpec, algo: CudnnAlgorithm) -> JobChain {
        match algo {
            CudnnAlgorithm::Winograd => Self::winograd_chain(layer),
            _ => Self::gemm_chain(layer, algo),
        }
    }

    /// The algorithm `cudnnFind` would return: fastest measured candidate.
    pub fn select_algorithm(layer: &ConvLayerSpec, device: &Device) -> CudnnAlgorithm {
        let engine = Engine::new(device);
        let time = |a| engine.run_chain(&Self::chain_for(layer, a)).total_time_us();
        // The candidate list always opens with ImplicitGemm (availability
        // rules), so the search folds from a seeded best infallibly; `<=`
        // keeps min_by's later-candidate-wins tie behavior.
        let mut best = (
            CudnnAlgorithm::ImplicitGemm,
            time(CudnnAlgorithm::ImplicitGemm),
        );
        for a in Self::candidates(layer).into_iter().skip(1) {
            let t = time(a);
            if t <= best.1 {
                best = (a, t);
            }
        }
        best.0
    }
}

impl ConvBackend for Cudnn {
    fn name(&self) -> &str {
        "cuDNN"
    }

    fn plan(&self, layer: &ConvLayerSpec, device: &Device) -> DispatchPlan {
        let algo = Self::select_algorithm(layer, device);
        let chain = Self::chain_for(layer, algo);
        let mut plan = DispatchPlan::new(self.name(), algo.name(), chain);
        plan.add_note(format!(
            "selected {} for {} via measured candidates",
            algo.name(),
            layer.label()
        ));
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pruneperf_models::resnet50;

    fn l16(c: usize) -> ConvLayerSpec {
        resnet50()
            .layer("ResNet.L16")
            .unwrap()
            .with_c_out(c)
            .unwrap()
    }

    #[test]
    fn winograd_gated_to_wide_3x3_stride1() {
        let net = resnet50();
        // L16: 3x3 but only 128 input channels -> no winograd candidate.
        assert!(!Cudnn::candidates(net.layer("ResNet.L16").unwrap())
            .contains(&CudnnAlgorithm::Winograd));
        // L29: 3x3 s1 cin=256 -> winograd considered.
        assert!(
            Cudnn::candidates(net.layer("ResNet.L29").unwrap()).contains(&CudnnAlgorithm::Winograd)
        );
        // L44: 3x3 but stride 2 -> no winograd.
        assert!(!Cudnn::candidates(net.layer("ResNet.L44").unwrap())
            .contains(&CudnnAlgorithm::Winograd));
    }

    /// Fig 4: flat steps of 32 channels on the TX2 — 97..128 equal, 96 is
    /// ~1.3x faster than 97, 64 steps down again.
    #[test]
    fn fig4_staircase_l16_tx2() {
        let d = Device::jetson_tx2();
        let b = Cudnn::new();
        let t128 = b.latency_ms(&l16(128), &d);
        let t97 = b.latency_ms(&l16(97), &d);
        let t96 = b.latency_ms(&l16(96), &d);
        let t65 = b.latency_ms(&l16(65), &d);
        let t64 = b.latency_ms(&l16(64), &d);
        assert!(
            (t128 / t97 - 1.0).abs() < 0.02,
            "flat within step: {t128} vs {t97}"
        );
        assert!(
            (t96 / t65 - 1.0).abs() < 0.02,
            "flat within step: {t96} vs {t65}"
        );
        let step = t97 / t96;
        assert!(
            (1.15..1.5).contains(&step),
            "96->97 step {step:.2} (paper: 1.3x)"
        );
        assert!(t96 > t64, "staircase is monotone");
    }

    /// Fig 4 absolute range: L16 lands in single-digit-to-low-teens ms.
    #[test]
    fn fig4_absolute_range() {
        let d = Device::jetson_tx2();
        let t = Cudnn::new().latency_ms(&l16(128), &d);
        assert!(
            (6.0..16.0).contains(&t),
            "L16@128 on TX2: {t:.2} ms (paper ~10.5)"
        );
    }

    /// Fig 5 vs Fig 7: the Nano shows the same staircase shape as the TX2,
    /// scaled by the device gap (~2.8x: half the SMs at a lower clock).
    #[test]
    fn fig7_nano_same_shape_scaled() {
        let l14 = resnet50().layer("ResNet.L14").unwrap().clone();
        let b = Cudnn::new();
        let tx2 = Device::jetson_tx2();
        let nano = Device::jetson_nano();
        let t_tx2 = b.latency_ms(&l14, &tx2);
        let t_nano = b.latency_ms(&l14, &nano);
        let ratio = t_nano / t_tx2;
        assert!(
            (2.0..4.5).contains(&ratio),
            "nano/tx2 ratio {ratio:.2} (paper ~3.5x)"
        );
        // Step positions coincide: both step down crossing a 32-boundary.
        let t480_tx2 = b.latency_ms(&l14.with_c_out(480).unwrap(), &tx2);
        let t481_tx2 = b.latency_ms(&l14.with_c_out(481).unwrap(), &tx2);
        let t480_nano = b.latency_ms(&l14.with_c_out(480).unwrap(), &nano);
        let t481_nano = b.latency_ms(&l14.with_c_out(481).unwrap(), &nano);
        assert!(t481_tx2 > t480_tx2 * 1.01);
        assert!(t481_nano > t480_nano * 1.01);
    }

    /// Within a 32-channel step the time is exactly flat (no vec4
    /// sub-structure like ACL): pruning < 32 channels from a stock size
    /// gives 1.0x, matching Fig 6's all-1.0 rows for Prune <= 31.
    #[test]
    fn fig6_no_speedup_below_step_width() {
        let d = Device::jetson_tx2();
        let b = Cudnn::new();
        let t0 = b.latency_ms(&l16(128), &d);
        for prune in [1usize, 3, 7, 15, 31] {
            let t = b.latency_ms(&l16(128 - prune), &d);
            assert!(
                ((t0 / t) - 1.0).abs() < 1e-9,
                "prune {prune}: expected flat, got {:.3}",
                t0 / t
            );
        }
        let t32 = b.latency_ms(&l16(128 - 32), &d);
        assert!(t0 / t32 > 1.1, "prune 32 crosses the step");
    }

    #[test]
    fn precomp_wins_for_1x1() {
        let d = Device::jetson_tx2();
        let l45 = resnet50().layer("ResNet.L45").unwrap().clone();
        assert_eq!(
            Cudnn::select_algorithm(&l45, &d),
            CudnnAlgorithm::ImplicitPrecompGemm
        );
    }

    #[test]
    fn plan_is_deterministic() {
        let d = Device::jetson_nano();
        let b = Cudnn::new();
        let l = l16(77);
        assert_eq!(b.plan(&l, &d), b.plan(&l, &d));
    }
}

//! TVM tuning-log model.
//!
//! TVM picks a schedule for each convolution *workload* (shape) from its
//! tuning log. Workloads without a log entry fall back to an untuned
//! default schedule — the paper finds “a significant number of optimization
//! calls instructed to use direct convolution which we know is generally
//! slower” (§IV-A4), producing Fig 20's spikes.
//!
//! [`TuningLog::tophub`] models the log TVM v0.6 ships with: stock channel
//! counts (multiples of 32) usually have good entries, a sprinkling of
//! other sizes are partially tuned, everything else falls back. Qualities
//! are deterministic hashes of the workload, so the same spiky-but-stable
//! pattern reproduces run after run. [`TuningLog::autotune`] adds a
//! high-quality entry for one workload, modelling an `autotvm` session —
//! the fix the paper implies (and our ablation bench quantifies).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use pruneperf_models::ConvLayerSpec;

use crate::hash::{fnv1a, range_f64, splitmix, unit_f64};

/// How the schedule for a workload was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScheduleKind {
    /// A good tuning-log entry: GEMM-style schedule.
    Tuned,
    /// A log entry of mediocre quality (tuned for a related shape).
    PartiallyTuned,
    /// No log entry: untuned direct-style fallback schedule.
    Fallback,
}

/// Shape key identifying a convolution workload (label-independent, the way
/// TVM keys its logs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct WorkloadKey {
    /// Kernel extent.
    pub kernel: usize,
    /// Stride.
    pub stride: usize,
    /// Input feature-map height.
    pub h_in: usize,
    /// Input channels.
    pub c_in: usize,
    /// Output channels.
    pub c_out: usize,
}

impl WorkloadKey {
    /// The key of a layer at its current channel count.
    pub fn of(layer: &ConvLayerSpec) -> Self {
        WorkloadKey {
            kernel: layer.kernel(),
            stride: layer.stride(),
            h_in: layer.h_in(),
            c_in: layer.c_in(),
            c_out: layer.c_out(),
        }
    }

    fn seed(&self, device: &str) -> u64 {
        let mut bytes = Vec::with_capacity(64);
        bytes.extend_from_slice(device.as_bytes());
        for v in [self.kernel, self.stride, self.h_in, self.c_in, self.c_out] {
            bytes.extend_from_slice(&(v as u64).to_le_bytes());
        }
        fnv1a(&bytes)
    }
}

/// A schedule decision: kind plus quality in `(0, 1]` (the fraction of the
/// device's issue rate the generated code achieves).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    /// How the entry was obtained.
    pub kind: ScheduleKind,
    /// Issue efficiency of the generated kernel.
    pub quality: f64,
}

/// A (device-specific) TVM tuning log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuningLog {
    device: String,
    #[serde(with = "override_entries")]
    overrides: HashMap<WorkloadKey, Schedule>,
}

/// JSON maps need string keys, so autotuned entries serialize as a list of
/// `(key, schedule)` pairs.
mod override_entries {
    use super::*;
    use serde::{Deserializer, Serializer};

    /// Serializes the override map as a key-sorted list of pairs.
    pub fn serialize<S: Serializer>(
        map: &HashMap<WorkloadKey, Schedule>,
        ser: S,
    ) -> Result<S::Ok, S::Error> {
        let mut entries: Vec<(WorkloadKey, Schedule)> = map.iter().map(|(k, v)| (*k, *v)).collect();
        entries.sort_by_key(|(k, _)| (k.kernel, k.stride, k.h_in, k.c_in, k.c_out));
        serde::Serialize::serialize(&entries, ser)
    }

    /// Rebuilds the override map from the serialized pair list.
    pub fn deserialize<'de, D: Deserializer<'de>>(
        de: D,
    ) -> Result<HashMap<WorkloadKey, Schedule>, D::Error> {
        let entries: Vec<(WorkloadKey, Schedule)> = serde::Deserialize::deserialize(de)?;
        Ok(entries.into_iter().collect())
    }
}

impl TuningLog {
    /// The log TVM ships with for a device (tophub model).
    pub fn tophub(device_name: impl Into<String>) -> Self {
        TuningLog {
            device: device_name.into(),
            overrides: HashMap::new(),
        }
    }

    /// Device the log was collected on.
    pub fn device(&self) -> &str {
        &self.device
    }

    /// Number of explicit (autotuned) entries.
    pub fn autotuned_entries(&self) -> usize {
        self.overrides.len()
    }

    /// A stable digest of the log's contents (device plus every override),
    /// used to distinguish differently-tuned TVM instances in memo tables.
    pub fn fingerprint(&self) -> u64 {
        let mut bytes = Vec::with_capacity(32 + self.overrides.len() * 48);
        bytes.extend_from_slice(self.device.as_bytes());
        let mut entries: Vec<(&WorkloadKey, &Schedule)> = self.overrides.iter().collect();
        entries.sort_by_key(|(k, _)| (k.kernel, k.stride, k.h_in, k.c_in, k.c_out));
        for (key, schedule) in entries {
            for v in [key.kernel, key.stride, key.h_in, key.c_in, key.c_out] {
                bytes.extend_from_slice(&(v as u64).to_le_bytes());
            }
            bytes.push(match schedule.kind {
                ScheduleKind::Tuned => 0,
                ScheduleKind::PartiallyTuned => 1,
                ScheduleKind::Fallback => 2,
            });
            bytes.extend_from_slice(&schedule.quality.to_bits().to_le_bytes());
        }
        fnv1a(&bytes)
    }

    /// Looks up (or derives) the schedule for a workload.
    ///
    /// Resolution order: explicit autotuned entries, then the deterministic
    /// tophub model — stock sizes (`c_out % 32 == 0`) usually have good
    /// entries but ~10% are mis-tuned; ~15% of arbitrary sizes are
    /// partially tuned; the rest fall back.
    pub fn schedule_for(&self, layer: &ConvLayerSpec) -> Schedule {
        let key = WorkloadKey::of(layer);
        if let Some(s) = self.overrides.get(&key) {
            return *s;
        }
        let seed = key.seed(&self.device);
        if key.c_out.is_multiple_of(32) {
            if unit_f64(splitmix(seed ^ 0xA11CE)) < 0.10 {
                // Mis-tuned stock entry: the log carries a bad config.
                Schedule {
                    kind: ScheduleKind::PartiallyTuned,
                    quality: range_f64(seed ^ 0xBAD, 0.12, 0.25),
                }
            } else {
                Schedule {
                    kind: ScheduleKind::Tuned,
                    quality: range_f64(seed ^ 0x600D, 0.40, 0.92),
                }
            }
        } else if unit_f64(splitmix(seed ^ 0x9A57)) < 0.15 {
            Schedule {
                kind: ScheduleKind::PartiallyTuned,
                quality: range_f64(seed ^ 0x50F7, 0.20, 0.45),
            }
        } else {
            Schedule {
                kind: ScheduleKind::Fallback,
                quality: range_f64(seed ^ 0xFA11, 0.055, 0.18),
            }
        }
    }

    /// Runs a modelled `autotvm` session on one workload, inserting a
    /// high-quality entry. `trials` follows autotvm semantics: more trials,
    /// better (and more stable) schedules; returns the achieved quality.
    pub fn autotune(&mut self, layer: &ConvLayerSpec, trials: usize) -> f64 {
        let key = WorkloadKey::of(layer);
        let seed = key.seed(&self.device) ^ 0x7071;
        // Best-of-`trials` draws from the tuning search space.
        let mut best: f64 = 0.25;
        for t in 0..trials.max(1) as u64 {
            best = best.max(range_f64(splitmix(seed.wrapping_add(t)), 0.25, 0.68));
        }
        // Quantize so logs survive JSON round trips bit-exactly.
        best = (best * 1e6).round() / 1e6;
        // lint: allow(grow) — one override per tuned (device, layer) key; the grid is finite
        self.overrides.insert(
            key,
            Schedule {
                kind: ScheduleKind::Tuned,
                quality: best,
            },
        );
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pruneperf_models::resnet50;

    fn l14(c: usize) -> ConvLayerSpec {
        resnet50()
            .layer("ResNet.L14")
            .unwrap()
            .with_c_out(c)
            .unwrap()
    }

    #[test]
    fn stock_sizes_are_usually_tuned() {
        let log = TuningLog::tophub("mali-g72");
        let tuned = (1..=16)
            .map(|i| log.schedule_for(&l14(i * 32)))
            .filter(|s| s.kind == ScheduleKind::Tuned)
            .count();
        assert!(tuned >= 12, "only {tuned}/16 stock sizes tuned");
    }

    #[test]
    fn most_arbitrary_sizes_fall_back() {
        let log = TuningLog::tophub("mali-g72");
        let fallback = (1..=100)
            .filter(|c| c % 32 != 0)
            .map(|c| log.schedule_for(&l14(c)))
            .filter(|s| s.kind == ScheduleKind::Fallback)
            .count();
        assert!(fallback > 60, "only {fallback} fallbacks");
    }

    #[test]
    fn fallback_quality_is_much_worse() {
        let log = TuningLog::tophub("mali-g72");
        for c in 1..=512usize {
            let s = log.schedule_for(&l14(c));
            match s.kind {
                ScheduleKind::Tuned => assert!(s.quality >= 0.40),
                ScheduleKind::PartiallyTuned => assert!((0.12..0.45).contains(&s.quality)),
                ScheduleKind::Fallback => assert!((0.055..0.18).contains(&s.quality)),
            }
        }
    }

    #[test]
    fn deterministic_per_device_but_differs_across_devices() {
        let a = TuningLog::tophub("mali-g72");
        let b = TuningLog::tophub("mali-g72");
        let c = TuningLog::tophub("mali-t628");
        let layer = l14(77);
        assert_eq!(a.schedule_for(&layer), b.schedule_for(&layer));
        assert_ne!(a.schedule_for(&layer), c.schedule_for(&layer));
    }

    #[test]
    fn autotune_overrides_and_improves() {
        let mut log = TuningLog::tophub("mali-g72");
        let layer = l14(77);
        let before = log.schedule_for(&layer);
        assert_eq!(before.kind, ScheduleKind::Fallback);
        let q = log.autotune(&layer, 200);
        assert!(q > 0.55, "200 trials should find a good schedule, got {q}");
        let after = log.schedule_for(&layer);
        assert_eq!(after.kind, ScheduleKind::Tuned);
        assert_eq!(after.quality, q);
        assert_eq!(log.autotuned_entries(), 1);
    }

    #[test]
    fn more_trials_never_hurt() {
        let layer = l14(91);
        let mut few = TuningLog::tophub("mali-g72");
        let mut many = TuningLog::tophub("mali-g72");
        let q_few = few.autotune(&layer, 10);
        let q_many = many.autotune(&layer, 500);
        assert!(q_many >= q_few);
    }

    #[test]
    fn serde_round_trip() {
        let mut log = TuningLog::tophub("mali-g72");
        log.autotune(&l14(77), 50);
        let json = serde_json::to_string(&log).unwrap();
        let back: TuningLog = serde_json::from_str(&json).unwrap();
        assert_eq!(log, back);
    }
}

//! ACL with the memory-driven method choice the paper describes.
//!
//! §IV-A2: “In many cases where memory is tightly limited, Direct
//! Convolution is the only option to implement a convolutional layer, due
//! to GEMM expanding the matrix of input patches, which requires almost one
//! order of magnitude more memory for a 3×3 filter.” And: “for many small
//! devices with limited memory space this may be the only method that can
//! actually execute at all.”
//!
//! [`AclAuto`] plans with the GEMM method when its buffers (input + patch
//! matrix + reshaped weights + output) fit the device's GPU heap, and falls
//! back to Direct convolution otherwise — the decision an application
//! integrating ACL actually has to make.

use pruneperf_gpusim::Device;
use pruneperf_models::ConvLayerSpec;

use crate::{AclDirect, AclGemm, ConvBackend, DispatchPlan};

/// Which ACL method [`AclAuto`] would use for a layer on a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AclMethod {
    /// im2col + GEMM (fits in memory).
    Gemm,
    /// Direct convolution (GEMM's patch matrix would not fit).
    Direct,
}

/// ACL with automatic GEMM→Direct fallback under memory pressure.
#[derive(Debug, Clone, Default)]
pub struct AclAuto {
    _private: (),
}

impl AclAuto {
    /// Creates the backend.
    pub fn new() -> Self {
        AclAuto::default()
    }

    /// Peak GPU-heap demand of the GEMM method for a layer, bytes.
    pub fn gemm_footprint_bytes(layer: &ConvLayerSpec) -> u64 {
        let (out_h, out_w) = layer.out_hw();
        let m = (out_h * out_w) as u64;
        let k = layer.taps() as u64;
        let c4 = (layer.c_out().div_ceil(4) * 4) as u64;
        let input = (layer.h_in() * layer.w_in() * layer.c_in()) as u64;
        // input + im2col patches + reshaped weights + output, f32 each.
        (input + m * k + k * c4 + m * c4) * 4
    }

    /// The method ACL can actually run on this device.
    pub fn method_for(layer: &ConvLayerSpec, device: &Device) -> AclMethod {
        if Self::gemm_footprint_bytes(layer) <= device.gpu_heap_bytes() {
            AclMethod::Gemm
        } else {
            AclMethod::Direct
        }
    }
}

impl ConvBackend for AclAuto {
    fn name(&self) -> &str {
        "ACL (auto method)"
    }

    fn plan(&self, layer: &ConvLayerSpec, device: &Device) -> DispatchPlan {
        match Self::method_for(layer, device) {
            AclMethod::Gemm => {
                let mut plan = AclGemm::new().plan(layer, device);
                plan.add_note(format!(
                    "GEMM buffers {} MiB fit the {} MiB heap",
                    Self::gemm_footprint_bytes(layer) / (1024 * 1024),
                    device.gpu_heap_mib()
                ));
                plan
            }
            AclMethod::Direct => {
                let mut plan = AclDirect::new().plan(layer, device);
                plan.add_note(format!(
                    "GEMM buffers {} MiB exceed the {} MiB heap; direct convolution is the \
                     only method that can execute (§IV-A2)",
                    Self::gemm_footprint_bytes(layer) / (1024 * 1024),
                    device.gpu_heap_mib()
                ));
                plan
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pruneperf_models::{resnet50, vgg16};

    /// A memory-starved board in the spirit of small IoT-class devices.
    fn tiny_heap_device() -> Device {
        Device::builder("Tiny IoT board").gpu_heap_mib(24).build()
    }

    #[test]
    fn roomy_devices_use_gemm_everywhere() {
        let d = Device::mali_g72_hikey970();
        for layer in resnet50().layers() {
            assert_eq!(AclAuto::method_for(layer, &d), AclMethod::Gemm, "{layer}");
        }
    }

    /// The im2col blow-up (~9x the input for 3x3) forces direct convolution
    /// on large early layers when the heap is small.
    #[test]
    fn tight_heap_forces_direct_on_big_layers() {
        let d = tiny_heap_device();
        let vgg = vgg16();
        let l2 = vgg.layer("VGG.L2").unwrap(); // 3x3 64->64 @224: huge patches
        assert_eq!(AclAuto::method_for(l2, &d), AclMethod::Direct);
        // A late small layer still fits.
        let l24 = vgg.layer("VGG.L24").unwrap(); // 3x3 512->512 @14
        assert_eq!(AclAuto::method_for(l24, &d), AclMethod::Gemm);
    }

    #[test]
    fn plans_note_the_memory_decision() {
        let d = tiny_heap_device();
        let vgg = vgg16();
        let plan = AclAuto::new().plan(vgg.layer("VGG.L2").unwrap(), &d);
        assert!(plan
            .chain()
            .jobs()
            .iter()
            .any(|j| j.kernel().name().starts_with("direct_convolution")));
        assert!(plan.notes().iter().any(|n| n.contains("exceed")), "{plan}");
    }

    /// The paper's 9x memory blow-up claim, checked on a real 3x3 layer.
    #[test]
    fn gemm_footprint_is_an_order_of_magnitude_bigger() {
        let vgg = vgg16();
        let l2 = vgg.layer("VGG.L2").unwrap();
        let input_bytes = (l2.h_in() * l2.w_in() * l2.c_in() * 4) as u64;
        let blowup = AclAuto::gemm_footprint_bytes(l2) as f64 / input_bytes as f64;
        assert!(
            (8.0..13.0).contains(&blowup),
            "footprint blow-up {blowup:.1}x (paper: ~an order of magnitude)"
        );
    }

    /// Falling back costs time: direct is slower, but it *runs* — the
    /// trade-off the paper describes.
    #[test]
    fn fallback_is_slower_but_valid() {
        let tight = tiny_heap_device();
        let roomy = Device::mali_g72_hikey970();
        let vgg = vgg16();
        let l2 = vgg.layer("VGG.L2").unwrap();
        let auto = AclAuto::new();
        let t_tight = auto.latency_ms(l2, &tight);
        let t_roomy = auto.latency_ms(l2, &roomy);
        assert!(t_tight.is_finite() && t_tight > 0.0);
        // Same device parameters except the heap would make this a clean
        // comparison; across these two devices direct-on-tiny must still be
        // slower than gemm-on-roomy.
        assert!(t_tight > t_roomy);
    }
}

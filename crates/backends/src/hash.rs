//! Small deterministic hashing utilities shared by the backend models.
//!
//! Used wherever a library exhibits *stable but shape-dependent* behaviour
//! (e.g. whether TVM's tuning log happens to contain a configuration). The
//! values are reproducible across runs and platforms by construction.

/// FNV-1a over a byte string.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// One splitmix64 scramble of a seed.
pub fn splitmix(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic uniform value in `[0, 1)` derived from a seed.
pub fn unit_f64(seed: u64) -> f64 {
    (splitmix(seed) >> 11) as f64 / (1u64 << 53) as f64
}

/// Deterministic uniform value in `[lo, hi)` derived from a seed.
pub fn range_f64(seed: u64, lo: f64, hi: f64) -> f64 {
    lo + unit_f64(seed) * (hi - lo)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_distinguishes_strings() {
        assert_ne!(fnv1a(b"ResNet.L16"), fnv1a(b"ResNet.L14"));
        assert_eq!(fnv1a(b"x"), fnv1a(b"x"));
    }

    #[test]
    fn unit_values_are_in_range_and_spread() {
        let mut seen_low = false;
        let mut seen_high = false;
        for i in 0..1000u64 {
            let v = unit_f64(i);
            assert!((0.0..1.0).contains(&v));
            seen_low |= v < 0.2;
            seen_high |= v > 0.8;
        }
        assert!(seen_low && seen_high);
    }

    #[test]
    fn range_respects_bounds() {
        for i in 0..100u64 {
            let v = range_f64(i, 0.04, 0.25);
            assert!((0.04..0.25).contains(&v));
        }
    }
}

//! TVM v0.6 OpenCL code-generator model (§IV-A4).
//!
//! TVM compiles each convolution into a single fused kernel whose schedule
//! comes from the tuning log ([`crate::tuning::TuningLog`]). Logged sizes
//! get a GEMM-style schedule; unlogged sizes fall back to a direct-style
//! default — “many sizes are untuned out of the box, showing a large
//! variation due to uninstructed heuristics” (Fig 20, spikes of ~10×; the
//! Fig 19 heatmap's 0.0× cells are prune levels that land on untuned
//! sizes).

use pruneperf_gpusim::{Device, JobChain, KernelDesc};
use pruneperf_models::ConvLayerSpec;

use crate::tuning::{ScheduleKind, TuningLog};
use crate::{ConvBackend, DispatchPlan};

/// Instructions per MAC of the tuned (GEMM-style) generated code.
const TUNED_INSTR_PER_MAC: u64 = 8;
/// Instructions per MAC of the fallback (direct-style) generated code.
const FALLBACK_INSTR_PER_MAC: u64 = 14;

/// The TVM backend model.
///
/// `Tvm::new()` consults the stock tophub log for whatever device it plans
/// on; [`Tvm::with_log`] plans against an explicit (e.g. autotuned) log.
///
/// ```
/// use pruneperf_backends::{ConvBackend, Tvm};
/// use pruneperf_gpusim::Device;
/// use pruneperf_models::resnet50;
///
/// let device = Device::mali_g72_hikey970();
/// let layer = resnet50().layer("ResNet.L14").unwrap().clone();
/// let plan = Tvm::new().plan(&layer, &device);
/// // Stock 512 channels are in the tuning log: a GEMM-style schedule.
/// assert!(plan.algorithm().contains("tuned"));
/// ```
#[derive(Debug, Clone)]
pub struct Tvm {
    log: Option<TuningLog>,
    /// Memoization identity, fixed at construction: hashing the tuning log
    /// sorts and serializes every override, far too slow to redo on each
    /// of the millions of cache queries a sweep issues.
    fingerprint: u64,
}

impl Default for Tvm {
    fn default() -> Self {
        Self::new()
    }
}

impl Tvm {
    /// TVM with the stock tuning log for each device.
    pub fn new() -> Self {
        Tvm {
            log: None,
            fingerprint: crate::hash::fnv1a(b"TVM"),
        }
    }

    /// TVM with an explicit tuning log (see [`TuningLog::autotune`]).
    pub fn with_log(log: TuningLog) -> Self {
        let fingerprint = crate::hash::fnv1a(b"TVM") ^ crate::hash::splitmix(log.fingerprint());
        Tvm {
            log: Some(log),
            fingerprint,
        }
    }

    /// The log used when planning on `device`.
    fn log_for(&self, device: &Device) -> TuningLog {
        self.log
            .clone()
            .unwrap_or_else(|| TuningLog::tophub(device.name()))
    }
}

impl ConvBackend for Tvm {
    fn name(&self) -> &str {
        "TVM"
    }

    /// Two `Tvm` instances with different explicit logs plan differently,
    /// so the log contents must be part of the memoization identity.
    fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    fn plan(&self, layer: &ConvLayerSpec, device: &Device) -> DispatchPlan {
        let log = self.log_for(device);
        let schedule = log.schedule_for(layer);
        let (out_h, out_w) = layer.out_hw();
        let m = out_h * out_w;
        let k_dim = layer.taps();
        let c4 = layer.c_out().div_ceil(4) * 4;

        let kernel = match schedule.kind {
            ScheduleKind::Tuned | ScheduleKind::PartiallyTuned => {
                // GEMM-style fused kernel: one work-item per 4x4 tile.
                KernelDesc::builder("fused_conv2d_gemm")
                    .global([m.div_ceil(4), c4 / 4, 1])
                    .local([4, 4, 1])
                    .arith_per_item(16 * k_dim as u64 * TUNED_INSTR_PER_MAC)
                    .mem_per_item(8 * k_dim as u64 + 36)
                    .cache_hit(0.6)
                    .coalescing(0.95)
                    .exec_efficiency(schedule.quality)
                    .footprint_bytes(((m * k_dim + k_dim * c4 + m * c4) * 4) as u64)
                    .build()
            }
            ScheduleKind::Fallback => {
                // Direct-style fallback: one work-item per output element.
                KernelDesc::builder("fused_conv2d_fallback")
                    .global([out_w, out_h, layer.c_out()])
                    .local([1, 1, 8])
                    .arith_per_item(k_dim as u64 * FALLBACK_INSTR_PER_MAC)
                    .mem_per_item(2 * k_dim as u64)
                    .cache_hit(0.3)
                    .coalescing(0.6)
                    .exec_efficiency(schedule.quality)
                    .padded_accounting(false)
                    .footprint_bytes(
                        ((layer.h_in() * layer.w_in() * layer.c_in()
                            + k_dim * layer.c_out()
                            + m * layer.c_out())
                            * 4) as u64,
                    )
                    .build()
            }
        };

        let mut plan = DispatchPlan::new(
            self.name(),
            match schedule.kind {
                ScheduleKind::Tuned => "tuned_gemm",
                ScheduleKind::PartiallyTuned => "partially_tuned_gemm",
                ScheduleKind::Fallback => "fallback_direct",
            },
            JobChain::from_kernels(vec![kernel]),
        );
        plan.add_note(format!(
            "schedule {:?} quality {:.2} for c_out={}",
            schedule.kind,
            schedule.quality,
            layer.c_out()
        ));
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pruneperf_models::resnet50;

    fn l14(c: usize) -> ConvLayerSpec {
        resnet50()
            .layer("ResNet.L14")
            .unwrap()
            .with_c_out(c)
            .unwrap()
    }

    fn device() -> Device {
        Device::mali_g72_hikey970()
    }

    #[test]
    fn single_fused_kernel() {
        let plan = Tvm::new().plan(&l14(512), &device());
        assert_eq!(plan.chain().len(), 1);
    }

    /// Fig 20: untuned sizes spike roughly an order of magnitude above the
    /// tuned envelope.
    #[test]
    fn fig20_untuned_spikes() {
        let d = device();
        let b = Tvm::new();
        let log = TuningLog::tophub(d.name());
        // Find a tuned stock size and an untuned neighbour.
        let tuned_c = (1..=16)
            .map(|i| i * 32)
            .find(|&c| log.schedule_for(&l14(c)).kind == ScheduleKind::Tuned)
            .expect("some stock size is tuned");
        let untuned_c = (tuned_c - 16..tuned_c)
            .find(|&c| log.schedule_for(&l14(c)).kind == ScheduleKind::Fallback)
            .expect("some neighbour falls back");
        let t_tuned = b.latency_ms(&l14(tuned_c), &d);
        let t_untuned = b.latency_ms(&l14(untuned_c), &d);
        let ratio = t_untuned / t_tuned;
        assert!(
            (4.0..45.0).contains(&ratio),
            "untuned/tuned ratio {ratio:.1} (paper: ~10.5x)"
        );
    }

    /// Fig 19: pruning one channel from a stock size usually tanks
    /// performance (0.0x–0.2x cells), because c−1 is rarely in the log.
    #[test]
    fn fig19_prune_by_one_usually_catastrophic() {
        let d = device();
        let b = Tvm::new();
        let log = TuningLog::tophub(d.name());
        let mut catastrophic = 0;
        let mut total = 0;
        for layer in resnet50().layers() {
            if log.schedule_for(layer).kind != ScheduleKind::Tuned {
                continue; // mis-tuned originals can go either way
            }
            total += 1;
            let t0 = b.latency_ms(layer, &d);
            let t1 = b.latency_ms(&layer.pruned_by(1).unwrap(), &d);
            if t0 / t1 < 0.25 {
                catastrophic += 1;
            }
        }
        assert!(
            catastrophic * 2 > total,
            "only {catastrophic}/{total} layers show the 0.0x–0.2x pattern"
        );
    }

    /// Autotuning removes the spike (our extension of the paper's
    /// “future solutions” discussion).
    #[test]
    fn autotuning_fixes_a_spike() {
        let d = device();
        let layer = l14(403); // arbitrary odd size
        let stock = Tvm::new();
        let t_before = stock.latency_ms(&layer, &d);
        let mut log = TuningLog::tophub(d.name());
        log.autotune(&layer, 300);
        let tuned = Tvm::with_log(log);
        let t_after = tuned.latency_ms(&layer, &d);
        assert!(
            t_after < t_before / 2.0,
            "autotune: {t_before:.1} -> {t_after:.1} ms"
        );
    }

    #[test]
    fn fingerprint_tracks_tuning_log() {
        let d = device();
        let stock = Tvm::new();
        assert_eq!(stock.fingerprint(), Tvm::new().fingerprint());
        let mut log = TuningLog::tophub(d.name());
        log.autotune(&l14(403), 300);
        let tuned = Tvm::with_log(log.clone());
        assert_ne!(stock.fingerprint(), tuned.fingerprint());
        assert_eq!(tuned.fingerprint(), Tvm::with_log(log).fingerprint());
    }

    #[test]
    fn deterministic() {
        let d = device();
        let b = Tvm::new();
        assert_eq!(b.latency_ms(&l14(77), &d), b.latency_ms(&l14(77), &d));
    }
}

//! Offline drop-in subset of the `proptest` API.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! the slice of proptest its property tests use: the [`strategy::Strategy`]
//! trait with `prop_map` / `prop_filter` / `prop_flat_map`, `Just`, range
//! and tuple strategies, [`collection::vec`], [`arbitrary::any`],
//! [`sample::Index`], `prop_oneof!`, and the `proptest!` / `prop_assert*` /
//! `prop_assume!` macros over a deterministic [`test_runner::TestRunner`].
//!
//! Differences from real proptest, deliberate for an offline deterministic
//! reproduction:
//!
//! * no shrinking — cases are seeded per test name, so a failure replays
//!   identically on every run and machine;
//! * `.proptest-regressions` files are not consumed (the checked-in shrunk
//!   cases are replayed as explicit unit tests instead);
//! * `prop_assume!` rejections regenerate the whole case, bounded by a
//!   global rejection cap.

#![forbid(unsafe_code)]

/// Deterministic RNG used by strategies (self-contained so the vendored
/// crates have no inter-dependencies).
pub mod rng {
    /// xorshift64* stream seeded through splitmix64.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Builds a generator from a 64-bit seed.
        pub fn seed_from_u64(seed: u64) -> Self {
            let mut s = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            s = z ^ (z >> 31);
            TestRng { state: s | 1 }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform index in `[0, n)`.
        pub fn below(&mut self, n: usize) -> usize {
            assert!(n > 0, "below(0)");
            (self.next_u64() % n as u64) as usize
        }
    }

    /// FNV-1a over bytes (stable per-test seeds).
    pub fn fnv1a(bytes: &[u8]) -> u64 {
        let mut hash = 0xCBF2_9CE4_8422_2325u64;
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x1_0000_01B3);
        }
        hash
    }
}

/// Value-generation strategies and combinators.
pub mod strategy {
    use super::rng::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// How many times a filter may reject before the test aborts.
    const FILTER_MAX_RETRIES: usize = 10_000;

    /// A generator of values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Regenerates until `f` accepts the value.
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            whence: impl Into<String>,
            f: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                whence: whence.into(),
                f,
            }
        }

        /// Generates a value, builds a second strategy from it, and draws
        /// from that.
        fn prop_flat_map<O: Strategy, F: Fn(Self::Value) -> O>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        whence: String,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..FILTER_MAX_RETRIES {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter `{}` rejected too many values", self.whence);
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O: Strategy, F: Fn(S::Value) -> O> Strategy for FlatMap<S, F> {
        type Value = O::Value;

        fn generate(&self, rng: &mut TestRng) -> O::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Uniform choice between boxed alternatives (built by `prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over the given alternatives.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len());
            self.options[idx].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return lo + rng.next_u64() as $t;
                    }
                    lo + (rng.next_u64() % (span + 1)) as $t
                }
            }
        )*};
    }

    int_range_strategy!(usize, u64, u32, u16, u8);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.unit_f64() as $t) * (self.end - self.start)
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    lo + (rng.unit_f64() as $t) * (hi - lo)
                }
            }
        )*};
    }

    float_range_strategy!(f64, f32);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);
    tuple_strategy!(A, B, C, D, E, F, G, H, I);
    tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
}

/// Collection strategies.
pub mod collection {
    use super::rng::TestRng;
    use super::strategy::Strategy;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive element-count range for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Generates `Vec`s whose length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi - self.size.lo + 1;
            let len = self.size.lo + rng.below(span.max(1)).min(span - 1);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use super::rng::TestRng;
    use super::strategy::Strategy;

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized {
        /// Draws one value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64()
        }
    }

    impl Arbitrary for super::sample::Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            super::sample::Index::new(rng.next_u64())
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    /// See [`any`].
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// Index sampling (`prop::sample::Index`).
pub mod sample {
    /// A deferred index into a collection of unknown length.
    #[derive(Debug, Clone, Copy)]
    pub struct Index(u64);

    impl Index {
        /// From raw random bits.
        pub fn new(raw: u64) -> Self {
            Index(raw)
        }

        /// The index this represents for a collection of `len` items.
        ///
        /// # Panics
        ///
        /// Panics on `len == 0`.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index(0)");
            (self.0 % len as u64) as usize
        }
    }
}

/// Deterministic test runner.
pub mod test_runner {
    use super::rng::{fnv1a, TestRng};
    use super::strategy::Strategy;

    /// Cap on `prop_assume!`/global rejections per test.
    const MAX_GLOBAL_REJECTS: usize = 65_536;

    /// Per-test configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` successful cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// An assertion failed — the whole test fails.
        Fail(String),
        /// `prop_assume!` rejected the inputs — the case is retried.
        Reject(String),
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError::Fail(message.into())
        }

        /// A rejection with the given reason.
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    /// Runs one property over `config.cases` generated inputs.
    pub struct TestRunner {
        config: ProptestConfig,
        name: &'static str,
    }

    impl TestRunner {
        /// A runner for the named test (the name seeds the RNG, so every
        /// run generates the same case sequence).
        pub fn new(config: ProptestConfig, name: &'static str) -> Self {
            TestRunner { config, name }
        }

        /// Generates inputs and applies `test` until `cases` pass.
        ///
        /// # Panics
        ///
        /// Panics on the first failing case (no shrinking: generation is
        /// deterministic, so the failure replays identically).
        pub fn run<S: Strategy, F: FnMut(S::Value) -> Result<(), TestCaseError>>(
            &self,
            strategy: &S,
            mut test: F,
        ) {
            let mut rng = TestRng::seed_from_u64(fnv1a(self.name.as_bytes()));
            let mut passed: u32 = 0;
            let mut rejected: usize = 0;
            while passed < self.config.cases {
                let case = strategy.generate(&mut rng);
                match test(case) {
                    Ok(()) => passed += 1,
                    Err(TestCaseError::Reject(reason)) => {
                        rejected += 1;
                        if rejected > MAX_GLOBAL_REJECTS {
                            panic!(
                                "{}: too many prop_assume! rejections (last: {})",
                                self.name, reason
                            );
                        }
                    }
                    Err(TestCaseError::Fail(message)) => {
                        panic!(
                            "{} failed at case {} (seeded by test name, rerun reproduces): {}",
                            self.name, passed, message
                        );
                    }
                }
            }
        }
    }
}

/// Everything a property test needs.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// The `prop` namespace (`prop::sample::Index` etc.).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
        pub use crate::strategy;
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...)` block
/// becomes a `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_inner! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_inner! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_inner {
    (config = $config:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __strategy = ($($strat,)+);
                let __runner = $crate::test_runner::TestRunner::new(
                    $config,
                    concat!(module_path!(), "::", stringify!($name)),
                );
                __runner.run(&__strategy, |($($arg,)+)| {
                    $body
                    Ok(())
                });
            }
        )*
    };
}

/// Asserts a condition inside a property, failing the case (not panicking
/// directly) so the runner can report the seeded case index.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` for properties.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::fail(format!(
                            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                            stringify!($left), stringify!($right), __l, __r,
                        )),
                    );
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
                    );
                }
            }
        }
    };
}

/// `assert_ne!` for properties.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if *__l == *__r {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "assertion failed: `{} != {}`\n  both: {:?}",
                            stringify!($left),
                            stringify!($right),
                            __l,
                        ),
                    ));
                }
            }
        }
    };
}

/// Discards the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Uniform choice between strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_generation() {
        use crate::rng::TestRng;
        use crate::strategy::Strategy;
        let strat = (1usize..=100, 0.0f64..1.0);
        let mut a = TestRng::seed_from_u64(1);
        let mut b = TestRng::seed_from_u64(1);
        for _ in 0..50 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Ranges respect bounds and filters hold.
        #[test]
        fn generated_values_in_bounds(
            x in 3usize..=9,
            f in 0.25f64..1.0,
            v in crate::collection::vec(1u64..=5, 2..6),
        ) {
            prop_assert!((3..=9).contains(&x));
            prop_assert!((0.25..1.0).contains(&f), "f out of range: {f}");
            prop_assert!(v.len() >= 2 && v.len() <= 5);
            for item in &v {
                prop_assert!((1..=5).contains(item));
            }
        }

        /// prop_assume retries instead of failing.
        #[test]
        fn assume_rejects_cleanly(x in 0usize..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        /// oneof picks only listed alternatives; Index stays in range.
        #[test]
        fn oneof_and_index(
            k in prop_oneof![Just(1usize), Just(3usize)],
            idx in any::<prop::sample::Index>(),
        ) {
            prop_assert!(k == 1 || k == 3);
            prop_assert!(idx.index(7) < 7);
        }
    }
}

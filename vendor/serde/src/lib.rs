//! Offline drop-in subset of the `serde` API.
//!
//! The build environment cannot reach crates.io, so the workspace vendors a
//! small serialization framework that is source-compatible with the slice of
//! serde this repository uses: `derive(Serialize, Deserialize)` on structs
//! and enums, `#[serde(default)]`, `#[serde(default = "path")]`,
//! `#[serde(with = "module")]`, `#[serde(skip_serializing_if = "path")]`,
//! and hand-written `with`-style modules generic over
//! [`Serializer`] / [`Deserializer`].
//!
//! Unlike real serde's streaming visitors, everything routes through one
//! self-describing [`Value`] tree. Objects keep field order (a `Vec` of
//! pairs, not a map), so struct serialization preserves declaration order
//! exactly like serde's streaming output, and `HashMap`s serialize with
//! sorted keys so output is deterministic run to run.

#![forbid(unsafe_code)]

use std::collections::HashMap;
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized tree (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer (only produced for negative values / signed types).
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered set of named fields (order-preserving, unlike a map).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Field lookup; `None` when absent or when `self` is not an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The entries when `self` is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The elements when `self` is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string when `self` is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean when `self` is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numeric coercion to `f64` (ints included, as JSON does not tag them).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            _ => None,
        }
    }

    /// Numeric coercion to `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::UInt(u) => i64::try_from(*u).ok(),
            _ => None,
        }
    }

    /// Numeric coercion to `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(u) => Some(*u),
            Value::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// `(tag, contents)` when `self` is a single-entry object — the
    /// externally-tagged enum representation.
    pub fn as_tagged(&self) -> Option<(&str, &Value)> {
        match self {
            Value::Object(fields) if fields.len() == 1 => {
                Some((fields[0].0.as_str(), &fields[0].1))
            }
            _ => None,
        }
    }
}

/// Serialization/deserialization failure.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// An error with the given message.
    pub fn msg(message: impl Into<String>) -> Self {
        Error(message.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Errors a [`Deserializer`] can produce (serde's `de::Error`).
pub trait DeError: Sized {
    /// Builds an error from a display-able message.
    fn custom<T: fmt::Display>(message: T) -> Self;
}

impl DeError for Error {
    fn custom<T: fmt::Display>(message: T) -> Self {
        Error(message.to_string())
    }
}

/// A type that can serialize itself into the [`Value`] data model.
pub trait Serialize {
    /// The serialized tree.
    fn to_value(&self) -> Value;

    /// Serializes through an arbitrary [`Serializer`] (serde-compatible
    /// signature for `with`-style modules).
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(self.to_value())
    }
}

/// A sink for serialized [`Value`]s.
pub trait Serializer: Sized {
    /// Success type.
    type Ok;
    /// Failure type.
    type Error;

    /// Consumes one serialized tree.
    fn serialize_value(self, value: Value) -> Result<Self::Ok, Self::Error>;
}

/// A type that can rebuild itself from the [`Value`] data model.
pub trait Deserialize<'de>: Sized {
    /// Rebuilds from a serialized tree.
    fn from_value(value: &Value) -> Result<Self, Error>;

    /// Deserializes from an arbitrary [`Deserializer`] (serde-compatible
    /// signature for `with`-style modules).
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let value = deserializer.into_value()?;
        Self::from_value(&value).map_err(<D::Error as DeError>::custom)
    }
}

/// A source of serialized [`Value`]s.
pub trait Deserializer<'de>: Sized {
    /// Failure type.
    type Error: DeError;

    /// Produces the full serialized tree.
    fn into_value(self) -> Result<Value, Self::Error>;
}

/// [`Serializer`] that just hands the [`Value`] back (used by derive to run
/// `with`-modules).
pub struct ValueSerializer;

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = Error;

    fn serialize_value(self, value: Value) -> Result<Value, Error> {
        Ok(value)
    }
}

/// [`Deserializer`] over an owned [`Value`] (used by derive to run
/// `with`-modules).
pub struct ValueDeserializer(pub Value);

impl<'de> Deserializer<'de> for ValueDeserializer {
    type Error = Error;

    fn into_value(self) -> Result<Value, Error> {
        Ok(self.0)
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<'de> Deserialize<'de> for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

// ---------------------------------------------------------------------------
// Impls for std types.

macro_rules! unsigned_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = value
                    .as_u64()
                    .ok_or_else(|| Error::msg(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(raw)
                    .map_err(|_| Error::msg(concat!("integer out of range for ", stringify!($t))))
            }
        }
    )*};
}

unsigned_impl!(u8, u16, u32, u64, usize);

macro_rules! signed_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::UInt(v as u64)
                } else {
                    Value::Int(v)
                }
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = value
                    .as_i64()
                    .ok_or_else(|| Error::msg(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(raw)
                    .map_err(|_| Error::msg(concat!("integer out of range for ", stringify!($t))))
            }
        }
    )*};
}

signed_impl!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_bool().ok_or_else(|| Error::msg("expected bool"))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_f64().ok_or_else(|| Error::msg("expected number"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| Error::msg("expected number"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::msg("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::msg("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(value)?;
        items
            .try_into()
            .map_err(|_| Error::msg("array length mismatch"))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value.as_array() {
            Some([a, b]) => Ok((A::from_value(a)?, B::from_value(b)?)),
            _ => Err(Error::msg("expected 2-element array")),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<'de, A: Deserialize<'de>, B: Deserialize<'de>, C: Deserialize<'de>> Deserialize<'de>
    for (A, B, C)
{
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value.as_array() {
            Some([a, b, c]) => Ok((A::from_value(a)?, B::from_value(b)?, C::from_value(c)?)),
            _ => Err(Error::msg("expected 3-element array")),
        }
    }
}

/// `HashMap`s iterate in arbitrary order, so serialize with sorted keys to
/// keep output deterministic run to run (required for reproducible artifact
/// files and `--jobs`-independent JSON).
impl<V: Serialize, S: std::hash::BuildHasher> Serialize for HashMap<String, V, S> {
    fn to_value(&self) -> Value {
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        Value::Object(
            keys.into_iter()
                .map(|k| (k.clone(), self[k].to_value()))
                .collect(),
        )
    }
}

impl<'de, V: Deserialize<'de>, S: std::hash::BuildHasher + Default> Deserialize<'de>
    for HashMap<String, V, S>
{
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_object()
            .ok_or_else(|| Error::msg("expected object"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(3usize.to_value(), Value::UInt(3));
        assert_eq!(usize::from_value(&Value::UInt(3)).unwrap(), 3);
        assert_eq!((-4i64).to_value(), Value::Int(-4));
        assert_eq!(f64::from_value(&Value::UInt(2)).unwrap(), 2.0);
        assert_eq!(Option::<u8>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn hashmap_serializes_sorted() {
        let mut map = HashMap::new();
        map.insert("b".to_string(), 2usize);
        map.insert("a".to_string(), 1usize);
        let v = map.to_value();
        assert_eq!(
            v,
            Value::Object(vec![
                ("a".to_string(), Value::UInt(1)),
                ("b".to_string(), Value::UInt(2)),
            ])
        );
    }

    #[test]
    fn tagged_accessor() {
        let v = Value::Object(vec![("Conv".to_string(), Value::UInt(1))]);
        assert_eq!(v.as_tagged(), Some(("Conv", &Value::UInt(1))));
    }
}

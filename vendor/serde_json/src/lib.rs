//! Offline drop-in subset of the `serde_json` API.
//!
//! Provides [`to_string`], [`to_string_pretty`] and [`from_str`] over the
//! vendored serde [`Value`] data model. Output formatting matches real
//! serde_json where this workspace depends on it:
//!
//! * compact output has no whitespace, pretty output indents by two spaces;
//! * floats print via Rust's shortest round-trip `Display`, with `.0`
//!   appended to integral values, so `to_string(from_str(s)) == s` for any
//!   string this module itself produced (the artifact-stability tests rely
//!   on serialize → parse → serialize being a fixed point);
//! * non-finite floats serialize as `null`.

#![forbid(unsafe_code)]

use std::fmt;

use serde::{DeError, Deserialize, Serialize, Value};

/// Serialization or parse failure.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error(message.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl DeError for Error {
    fn custom<T: fmt::Display>(message: T) -> Self {
        Error(message.to_string())
    }
}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

// ---------------------------------------------------------------------------
// Writing.

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Shortest round-trip float formatting, always with a fractional part so a
/// reparse yields a float again (matches serde_json).
fn write_f64(out: &mut String, f: f64) {
    if !f.is_finite() {
        out.push_str("null");
        return;
    }
    let s = format!("{f}");
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_compact(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_f64(out, *f),
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(out, item);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, fv)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_compact(out, fv);
            }
            out.push('}');
        }
    }
}

fn write_pretty(out: &mut String, v: &Value, indent: usize) {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_in);
                write_pretty(out, item, indent + 1);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(fields) if !fields.is_empty() => {
            out.push_str("{\n");
            for (i, (k, fv)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_in);
                write_escaped(out, k);
                out.push_str(": ");
                write_pretty(out, fv, indent + 1);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push('}');
        }
        other => write_compact(out, other),
    }
}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_compact(&mut out, &value.to_value());
    Ok(out)
}

/// Serializes `value` as pretty JSON (two-space indent).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&mut out, &value.to_value(), 0);
    Ok(out)
}

// ---------------------------------------------------------------------------
// Parsing.

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::new("expected `,` or `]` in array")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    fields.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(fields));
                        }
                        _ => return Err(Error::new("expected `,` or `}` in object")),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected input at byte {}: {:?}",
                self.pos,
                other.map(|b| b as char)
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                self.pos += 1;
                                if self.peek() != Some(b'\\') {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?,
                            );
                        }
                        _ => return Err(Error::new("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    /// Parses the 4 hex digits after `\u` (cursor on the `u`).
    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let start = self.pos + 1;
        let end = start + 4;
        if end > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let digits = std::str::from_utf8(&self.bytes[start..end])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        let code = u32::from_str_radix(digits, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos = end - 1;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                }
                b'+' | b'-' => self.pos += 1,
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            match text.parse::<i64>() {
                Ok(i) => Ok(Value::Int(i)),
                Err(_) => text
                    .parse::<f64>()
                    .map(Value::Float)
                    .map_err(|_| Error::new(format!("invalid number `{text}`"))),
            }
        } else {
            match text.parse::<u64>() {
                Ok(u) => Ok(Value::UInt(u)),
                Err(_) => text
                    .parse::<f64>()
                    .map(Value::Float)
                    .map_err(|_| Error::new(format!("invalid number `{text}`"))),
            }
        }
    }
}

/// Parses JSON text into a `T`.
pub fn from_str<'de, T: Deserialize<'de>>(s: &str) -> Result<T, Error> {
    let mut parser = Parser::new(s);
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    T::from_value(&value).map_err(Error::from)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_is_fixed_point() {
        let cases = [
            "{\"a\":1,\"b\":[1.5,-2,true,null],\"c\":\"x\\ny\"}",
            "[0.1,100.0,1e300,3.141592653589793]",
            "{\"nested\":{\"k\":[{\"q\":0.055}]}}",
        ];
        for json in cases {
            let v: serde::Value = from_str(json).unwrap();
            let out = to_string(&v).unwrap();
            let v2: serde::Value = from_str(&out).unwrap();
            assert_eq!(out, to_string(&v2).unwrap());
        }
    }

    #[test]
    fn floats_keep_fractional_part() {
        let mut out = String::new();
        write_f64(&mut out, 2.0);
        assert_eq!(out, "2.0");
        let v: serde::Value = from_str("2.0").unwrap();
        assert_eq!(to_string(&v).unwrap(), "2.0");
    }

    #[test]
    fn pretty_uses_two_space_indent() {
        let v: serde::Value = from_str("{\"a\":[1,2]}").unwrap();
        assert_eq!(
            to_string_pretty(&v).unwrap(),
            "{\n  \"a\": [\n    1,\n    2\n  ]\n}"
        );
    }

    #[test]
    fn string_escapes_round_trip() {
        let v: serde::Value = from_str("\"\\u0041\\n\\\"\\\\ \\u00e9\"").unwrap();
        assert_eq!(v, serde::Value::Str("A\n\"\\ é".to_string()));
    }
}

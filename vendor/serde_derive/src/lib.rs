//! `#[derive(Serialize, Deserialize)]` for the vendored serde subset.
//!
//! Implemented directly on `proc_macro::TokenStream` (no syn/quote — the
//! build environment is offline). Supports exactly the item shapes this
//! workspace uses:
//!
//! * structs with named fields (any visibility), unit structs;
//! * enums with unit, newtype and struct variants (externally tagged);
//! * field attributes `#[serde(default)]`, `#[serde(default = "path")]`,
//!   `#[serde(with = "module")]`, `#[serde(skip_serializing_if = "path")]`.
//!
//! Generics, tuple structs, renames and container attributes are
//! intentionally unsupported and panic with a clear message.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---------------------------------------------------------------------------
// Parsed item model.

#[derive(Default, Clone)]
struct FieldAttrs {
    /// `Some(None)` for bare `default`, `Some(Some(path))` for `default = "path"`.
    default: Option<Option<String>>,
    with: Option<String>,
    skip_serializing_if: Option<String>,
}

struct Field {
    name: String,
    attrs: FieldAttrs,
}

enum VariantKind {
    Unit,
    Newtype,
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum ItemKind {
    Struct(Vec<Field>),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    kind: ItemKind,
}

// ---------------------------------------------------------------------------
// Token-level parsing.

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn expect_ident(&mut self, what: &str) -> String {
        match self.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde derive: expected {what}, found {other:?}"),
        }
    }

    /// Consumes leading attributes, returning the merged `#[serde(...)]`
    /// entries (other attributes, e.g. doc comments, are skipped).
    fn take_attrs(&mut self) -> FieldAttrs {
        let mut attrs = FieldAttrs::default();
        while let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() != '#' {
                break;
            }
            self.next();
            let group = match self.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
                other => panic!("serde derive: malformed attribute, found {other:?}"),
            };
            parse_attr_group(group.stream(), &mut attrs);
        }
        attrs
    }

    /// Consumes `pub`, `pub(crate)`, `pub(in ...)` if present.
    fn skip_visibility(&mut self) {
        if let Some(TokenTree::Ident(i)) = self.peek() {
            if i.to_string() == "pub" {
                self.next();
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.next();
                    }
                }
            }
        }
    }

    /// Skips a type up to a top-level `,` (consumed) or end of stream.
    fn skip_type(&mut self) {
        let mut angle_depth = 0usize;
        while let Some(tok) = self.peek() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    angle_depth = angle_depth.saturating_sub(1);
                }
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    self.next();
                    return;
                }
                _ => {}
            }
            self.next();
        }
    }
}

/// Parses the contents of one `[...]` attribute, merging any `serde(...)`
/// entries into `attrs`.
fn parse_attr_group(stream: TokenStream, attrs: &mut FieldAttrs) {
    let mut cursor = Cursor::new(stream);
    match cursor.peek() {
        Some(TokenTree::Ident(i)) if i.to_string() == "serde" => {
            cursor.next();
        }
        _ => return,
    }
    let inner = match cursor.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g,
        other => panic!("serde derive: malformed #[serde] attribute: {other:?}"),
    };
    let mut c = Cursor::new(inner.stream());
    while !c.at_end() {
        let key = c.expect_ident("serde attribute name");
        let value = match c.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                c.next();
                match c.next() {
                    Some(TokenTree::Literal(lit)) => Some(unquote(&lit.to_string())),
                    other => panic!("serde derive: expected string literal, found {other:?}"),
                }
            }
            _ => None,
        };
        match (key.as_str(), value) {
            ("default", v) => attrs.default = Some(v),
            ("with", Some(path)) => attrs.with = Some(path),
            ("skip_serializing_if", Some(path)) => attrs.skip_serializing_if = Some(path),
            (other, _) => panic!("serde derive: unsupported attribute `{other}`"),
        }
        if let Some(TokenTree::Punct(p)) = c.peek() {
            if p.as_char() == ',' {
                c.next();
            }
        }
    }
}

fn unquote(lit: &str) -> String {
    lit.trim_matches('"').to_string()
}

fn parse_fields(stream: TokenStream) -> Vec<Field> {
    let mut cursor = Cursor::new(stream);
    let mut fields = Vec::new();
    while !cursor.at_end() {
        let attrs = cursor.take_attrs();
        if cursor.at_end() {
            break;
        }
        cursor.skip_visibility();
        let name = cursor.expect_ident("field name");
        match cursor.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde derive: expected `:` after field `{name}`, found {other:?}"),
        }
        cursor.skip_type();
        fields.push(Field { name, attrs });
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut cursor = Cursor::new(stream);
    let mut variants = Vec::new();
    while !cursor.at_end() {
        let _attrs = cursor.take_attrs();
        if cursor.at_end() {
            break;
        }
        let name = cursor.expect_ident("variant name");
        let kind = match cursor.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let has_top_level_comma = {
                    let mut depth = 0usize;
                    let mut found = false;
                    let mut trailing = true;
                    for t in g.stream() {
                        trailing = false;
                        match t {
                            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                            TokenTree::Punct(p) if p.as_char() == '>' => {
                                depth = depth.saturating_sub(1);
                            }
                            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                                trailing = true;
                                found = true;
                            }
                            _ => {}
                        }
                    }
                    found && !trailing
                };
                if has_top_level_comma {
                    panic!("serde derive: multi-field tuple variant `{name}` unsupported");
                }
                cursor.next();
                VariantKind::Newtype
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_fields(g.stream());
                cursor.next();
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        if let Some(TokenTree::Punct(p)) = cursor.peek() {
            if p.as_char() == ',' {
                cursor.next();
            }
        }
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut cursor = Cursor::new(input);
    let _container_attrs = cursor.take_attrs();
    cursor.skip_visibility();
    let keyword = cursor.expect_ident("`struct` or `enum`");
    let name = cursor.expect_ident("item name");
    if let Some(TokenTree::Punct(p)) = cursor.peek() {
        if p.as_char() == '<' {
            panic!("serde derive: generic types are unsupported");
        }
    }
    let kind = match keyword.as_str() {
        "struct" => match cursor.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::Struct(parse_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => ItemKind::Struct(Vec::new()),
            other => panic!("serde derive: unsupported struct body: {other:?}"),
        },
        "enum" => match cursor.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde derive: unsupported enum body: {other:?}"),
        },
        other => panic!("serde derive: expected struct or enum, found `{other}`"),
    };
    Item { name, kind }
}

// ---------------------------------------------------------------------------
// Code generation.

fn gen_struct_to_value(fields: &[Field], access_prefix: &str) -> String {
    let mut out = String::new();
    out.push_str(
        "{ let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
         ::std::vec::Vec::new();\n",
    );
    for f in fields {
        let access = format!("{}{}", access_prefix, f.name);
        let value_expr = match &f.attrs.with {
            Some(module) => format!(
                "match {module}::serialize(&{access}, ::serde::ValueSerializer) {{ \
                 ::std::result::Result::Ok(v) => v, \
                 ::std::result::Result::Err(e) => \
                 ::std::panic!(\"field `{name}` failed to serialize: {{}}\", e) }}",
                name = f.name,
            ),
            None => format!("::serde::Serialize::to_value(&{access})"),
        };
        let push = format!(
            "__fields.push((::std::string::String::from(\"{name}\"), {value_expr}));\n",
            name = f.name,
        );
        match &f.attrs.skip_serializing_if {
            Some(predicate) => {
                out.push_str(&format!("if !{predicate}(&{access}) {{ {push} }}\n"));
            }
            None => out.push_str(&push),
        }
    }
    out.push_str("::serde::Value::Object(__fields) }");
    out
}

/// One `field: <expr>` initializer reading from object `__v`.
fn gen_field_init(f: &Field, container: &str) -> String {
    let present = match &f.attrs.with {
        Some(module) => {
            format!("{module}::deserialize(::serde::ValueDeserializer(__f.clone()))?")
        }
        None => "::serde::Deserialize::from_value(__f)?".to_string(),
    };
    let missing = match &f.attrs.default {
        Some(Some(path)) => format!("{path}()"),
        Some(None) => "::std::default::Default::default()".to_string(),
        None => format!(
            "return ::std::result::Result::Err(::serde::Error::msg(\
             \"missing field `{name}` in {container}\"))",
            name = f.name,
        ),
    };
    format!(
        "{name}: match __v.get(\"{name}\") {{ \
         ::std::option::Option::Some(__f) => {present}, \
         ::std::option::Option::None => {missing}, }},\n",
        name = f.name,
    )
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(fields) => gen_struct_to_value(fields, "self."),
        ItemKind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vname} => \
                         ::serde::Value::Str(::std::string::String::from(\"{vname}\")),\n",
                    )),
                    VariantKind::Newtype => arms.push_str(&format!(
                        "{name}::{vname}(__x0) => ::serde::Value::Object(::std::vec![(\
                         ::std::string::String::from(\"{vname}\"), \
                         ::serde::Serialize::to_value(__x0))]),\n",
                    )),
                    VariantKind::Struct(fields) => {
                        let bindings: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let inner = gen_struct_to_value(fields, "");
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {binds} }} => \
                             ::serde::Value::Object(::std::vec![(\
                             ::std::string::String::from(\"{vname}\"), {inner})]),\n",
                            binds = bindings.join(", "),
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(fields) => {
            let mut inits = String::new();
            for f in fields {
                inits.push_str(&gen_field_init(f, name));
            }
            format!(
                "if __v.as_object().is_none() {{ \
                 return ::std::result::Result::Err(::serde::Error::msg(\
                 \"expected object for {name}\")); }}\n\
                 ::std::result::Result::Ok({name} {{\n{inits}}})",
            )
        }
        ItemKind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => unit_arms.push_str(&format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),\n",
                    )),
                    VariantKind::Newtype => tagged_arms.push_str(&format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                         ::serde::Deserialize::from_value(__inner)?)),\n",
                    )),
                    VariantKind::Struct(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            inits.push_str(&gen_field_init(f, name));
                        }
                        tagged_arms.push_str(&format!(
                            "\"{vname}\" => {{ let __v = __inner; \
                             ::std::result::Result::Ok({name}::{vname} {{\n{inits}}}) }}\n",
                        ));
                    }
                }
            }
            format!(
                "if let ::std::option::Option::Some(__s) = __v.as_str() {{\n\
                 return match __s {{\n{unit_arms}\
                 _ => ::std::result::Result::Err(::serde::Error::msg(\
                 \"unknown variant for {name}\")),\n}};\n}}\n\
                 if let ::std::option::Option::Some((__tag, __inner)) = __v.as_tagged() {{\n\
                 return match __tag {{\n{tagged_arms}\
                 _ => ::std::result::Result::Err(::serde::Error::msg(\
                 \"unknown variant for {name}\")),\n}};\n}}\n\
                 ::std::result::Result::Err(::serde::Error::msg(\
                 \"unrecognized value for {name}\"))",
            )
        }
    };
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
         fn from_value(__v: &::serde::Value) \
         -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n}}\n"
    )
}

// ---------------------------------------------------------------------------
// Entry points.

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde derive: generated Serialize impl failed to parse")
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde derive: generated Deserialize impl failed to parse")
}

//! Offline drop-in subset of the `criterion` benchmarking API.
//!
//! Implements the macro/builder surface the workspace's benches use
//! (`criterion_group!`, `criterion_main!`, `Criterion::sample_size`,
//! `bench_function`, `benchmark_group`, `bench_with_input`, `BenchmarkId`)
//! with a plain median-of-N wall-clock harness instead of criterion's
//! statistical machinery. Results print as `<id>: median <time> (N samples)`.
//!
//! When invoked by `cargo test` (which passes `--test` to `harness = false`
//! bench targets) each benchmark body runs exactly once as a smoke check,
//! matching real criterion's test-mode behaviour.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// True when the binary was invoked in cargo-test mode (`--test` flag).
fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    /// Sets how many samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_bench(id, self.sample_size, f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size,
        }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Runs one parameterized benchmark within the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, id.0), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (report flushing is a no-op here).
    pub fn finish(self) {}
}

/// Identifier for one parameterized benchmark case.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id rendered from the parameter value alone.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId(parameter.to_string())
    }

    /// An id of the form `function/parameter`.
    pub fn new<P: fmt::Display>(function: &str, parameter: P) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    iterations: usize,
}

impl Bencher {
    /// Times `routine`, recording one sample per configured iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.iterations {
            let start = Instant::now();
            let out = routine();
            self.samples.push(start.elapsed());
            drop(out);
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut f: F) {
    let iterations = if test_mode() { 1 } else { sample_size };
    let mut bencher = Bencher {
        samples: Vec::with_capacity(iterations),
        iterations,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{id}: no samples recorded");
        return;
    }
    bencher.samples.sort();
    let median = bencher.samples[bencher.samples.len() / 2];
    println!(
        "{id}: median {:?} ({} samples)",
        median,
        bencher.samples.len()
    );
}

/// Declares a group of benchmark functions with shared configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default().sample_size(5);
        let mut runs = 0usize;
        c.bench_function("smoke", |b| b.iter(|| runs += 1));
        assert!(runs >= 1);
        let mut group = c.benchmark_group("grp");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::from_parameter(42), &42, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
    }
}

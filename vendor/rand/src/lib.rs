//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small slice of `rand` it actually uses: a
//! deterministic [`rngs::SmallRng`] seeded with [`SeedableRng::seed_from_u64`]
//! plus the [`Rng`] sampling helpers (`gen_range`, `gen_bool`, `gen`).
//!
//! The generator is an xorshift64* stream seeded through splitmix64. It is
//! **not** the upstream `SmallRng` algorithm (xoshiro256++), so absolute
//! sequences differ from crates.io `rand`; every consumer in this workspace
//! only relies on determinism and uniformity, not on matching upstream
//! streams.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// One splitmix64 scramble (used for seeding).
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Core random source: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// A sampleable range, mirroring `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 uniform bits in [0, 1).
    (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + unit_f64(rng) * (hi - lo)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range");
        self.start + (unit_f64(rng) as f32) * (self.end - self.start)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8);

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Sampling helpers layered over a [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        unit_f64(self) < p
    }

    /// A value of a [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xorshift64*).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // Scramble the seed so small/sequential seeds decorrelate, and
            // keep the xorshift state nonzero.
            let mut s = state;
            let mixed = splitmix64(&mut s) | 1;
            SmallRng { state: mixed }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0.0..1.0), b.gen_range(0.0..1.0));
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen_range(0.0..1.0), c.gen_range(0.0..1.0));
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-0.5..0.5);
            assert!((-0.5..0.5).contains(&v));
            let i = rng.gen_range(3usize..=9);
            assert!((3..=9).contains(&i));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.08)).count();
        assert!((400..1200).contains(&hits), "{hits}");
    }
}

//! Smoke-runs of the example binaries.
//!
//! Marked `#[ignore]` because each example performs full channel sweeps —
//! minutes in debug builds. Run explicitly (release strongly recommended):
//!
//! ```text
//! cargo test --release --test examples_smoke -- --ignored
//! ```

use std::process::Command;

fn run_example(name: &str) {
    let status = Command::new(env!("CARGO"))
        .args(["run", "--release", "--example", name])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .status()
        .expect("cargo is runnable");
    assert!(status.success(), "example {name} failed: {status}");
}

#[test]
#[ignore = "runs full sweeps; execute with --ignored in release"]
fn quickstart_runs() {
    run_example("quickstart");
}

#[test]
#[ignore = "runs full sweeps; execute with --ignored in release"]
fn prune_resnet50_runs() {
    run_example("prune_resnet50");
}

#[test]
#[ignore = "runs full sweeps; execute with --ignored in release"]
fn library_shootout_runs() {
    run_example("library_shootout");
}

#[test]
#[ignore = "runs full sweeps; execute with --ignored in release"]
fn simulator_deep_dive_runs() {
    run_example("simulator_deep_dive");
}

#[test]
#[ignore = "runs full sweeps; execute with --ignored in release"]
fn design_for_device_runs() {
    run_example("design_for_device");
}

#[test]
#[ignore = "runs full sweeps; execute with --ignored in release"]
fn sustained_inference_runs() {
    run_example("sustained_inference");
}

//! End-to-end behaviour of `pruneperf lint`: clean on this tree, golden
//! (byte-identical) across worker counts and consecutive runs, and a
//! nonzero exit when a fixture seeds violations.

use pruneperf::cli::{run_cli, CliError};

fn run(args: &[&str]) -> Result<String, CliError> {
    let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    run_cli(&v)
}

fn fixture(name: &str) -> String {
    format!(
        "{}/crates/analysis/tests/fixtures/{name}",
        env!("CARGO_MANIFEST_DIR")
    )
}

/// The repository's own tree passes its lint, and the JSON report is
/// byte-identical across `--jobs 1` and `--jobs 8` and across two
/// consecutive runs — the golden determinism contract.
#[test]
fn lint_is_clean_and_golden_on_this_tree() {
    let sequential = run(&["lint", "--json", "--jobs", "1"]).expect("clean tree");
    let parallel = run(&["lint", "--json", "--jobs", "8"]).expect("clean tree");
    assert_eq!(sequential, parallel);
    let again = run(&["lint", "--json", "--jobs", "8"]).expect("clean tree");
    assert_eq!(parallel, again);
    assert!(sequential.contains("\"errors\": 0"), "{sequential}");
    assert!(sequential.contains("\"warnings\": 0"), "{sequential}");
}

/// Seeded source violations make the command fail (the binary maps the
/// `Err` to a nonzero exit), with the rule ids in the rendered output.
#[test]
fn lint_fails_on_seeded_violations() {
    let err = run(&["lint", "--root", &fixture("dirty")]).expect_err("dirty fixture must fail");
    for rule in [
        "SL001", "SL002", "SL003", "SL004", "SL005", "SL006", "SL007",
    ] {
        assert!(err.0.contains(rule), "missing {rule} in:\n{}", err.0);
    }
}

/// Warnings alone pass by default and fail under `--deny-warnings`.
#[test]
fn deny_warnings_promotes_warnings_to_failure() {
    let ok = run(&["lint", "--root", &fixture("warn_only")]).expect("warnings pass by default");
    assert!(ok.contains("0 error(s)"), "{ok}");
    let err = run(&["lint", "--root", &fixture("warn_only"), "--deny-warnings"])
        .expect_err("--deny-warnings must fail on warnings");
    assert!(err.0.contains("SL005"), "{}", err.0);
}

/// Unknown flags are reported, not ignored.
#[test]
fn lint_rejects_unknown_flags() {
    let err = run(&["lint", "--format", "json"]).expect_err("unknown flag");
    assert!(err.0.contains("unexpected argument"), "{}", err.0);
}

//! End-to-end behaviour of `pruneperf audit`: the stock assemblies,
//! greedy pruning plans and simulator traces all pass the NV/TA rules on
//! this tree, and the JSON report is byte-identical across worker counts
//! — the golden determinism contract from the lint core, extended to the
//! dynamic-artifact layers.

use pruneperf::cli::run_cli;

fn run(args: &[&str]) -> Result<String, pruneperf::cli::CliError> {
    let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    run_cli(&v)
}

/// The audit is clean on this tree — zero errors and zero warnings over
/// every stock network, pruned variant, greedy plan and traced dispatch —
/// and the JSON rendering is byte-identical across `--jobs 1` and
/// `--jobs 8`.
#[test]
fn audit_is_clean_and_golden_across_worker_counts() {
    let sequential = run(&["audit", "--json", "--jobs", "1"]).expect("clean audit");
    let parallel = run(&["audit", "--json", "--jobs", "8"]).expect("clean audit");
    assert_eq!(sequential, parallel);
    assert!(sequential.contains("\"errors\": 0"), "{sequential}");
    assert!(sequential.contains("\"warnings\": 0"), "{sequential}");
    assert!(sequential.contains("\"networks_verified\""), "{sequential}");
    assert!(sequential.contains("\"traces_audited\""), "{sequential}");
}

/// Unknown flags are reported, not ignored.
#[test]
fn audit_rejects_unknown_flags() {
    let err = run(&["audit", "--root", "."]).expect_err("unknown flag");
    assert!(err.0.contains("unexpected argument"), "{}", err.0);
}

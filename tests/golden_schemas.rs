//! Golden JSON-*schema* snapshot tests for every machine-readable CLI
//! surface (PR 5 satellite).
//!
//! Values in `lint --json` (file counts) and `bench --json` (virtual
//! metrics) legitimately move as the codebase grows, so these goldens pin
//! the *shape* instead: key names, key order, nesting and value types.
//! A renamed or reordered field — the thing that silently breaks a
//! downstream consumer — fails the diff; a new measurement does not.
//!
//! One full-byte golden rides along: `chaos --seed 1 --json` is a pure
//! function of the seed and the simulator, so its exact bytes are pinned
//! as a regression anchor.
//!
//! Regenerate after an intentional schema change with:
//!
//! ```text
//! PRUNEPERF_UPDATE_GOLDENS=1 cargo test --test golden_schemas
//! ```

use std::path::PathBuf;

use pruneperf::cli::run_cli;

/// Renders the *shape* of a JSON value: objects list their keys in order
/// with each value's shape indented below; arrays list the distinct
/// element shapes in first-appearance order; every number renders as
/// `number` so `0` vs `0.5` cannot flap the schema.
fn shape(value: &serde::Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    match value {
        serde::Value::Null => out.push_str(&format!("{pad}null\n")),
        serde::Value::Bool(_) => out.push_str(&format!("{pad}bool\n")),
        serde::Value::Int(_) | serde::Value::UInt(_) | serde::Value::Float(_) => {
            out.push_str(&format!("{pad}number\n"))
        }
        serde::Value::Str(_) => out.push_str(&format!("{pad}string\n")),
        serde::Value::Array(items) => {
            if items.is_empty() {
                out.push_str(&format!("{pad}array (empty)\n"));
                return;
            }
            out.push_str(&format!("{pad}array of:\n"));
            let mut seen: Vec<String> = Vec::new();
            for item in items {
                let mut rendered = String::new();
                shape(item, indent + 1, &mut rendered);
                if !seen.contains(&rendered) {
                    seen.push(rendered);
                }
            }
            for rendered in seen {
                out.push_str(&rendered);
            }
        }
        serde::Value::Object(entries) => {
            out.push_str(&format!("{pad}object:\n"));
            for (key, entry) in entries {
                out.push_str(&format!("{pad}  {key}:\n"));
                shape(entry, indent + 2, out);
            }
        }
    }
}

fn schema_of(json: &str) -> String {
    let parsed: serde::Value = serde_json::from_str(json).expect("CLI emitted invalid JSON");
    let mut out = String::new();
    shape(&parsed, 0, &mut out);
    out
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/goldens")
        .join(name)
}

/// Compares `actual` against the checked-in golden, or rewrites the
/// golden when `PRUNEPERF_UPDATE_GOLDENS` is set.
fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("PRUNEPERF_UPDATE_GOLDENS").is_some() {
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden {name} ({e}); run with PRUNEPERF_UPDATE_GOLDENS=1 to create it")
    });
    assert_eq!(
        expected, actual,
        "golden '{name}' drifted; if the change is intentional, regenerate with \
         PRUNEPERF_UPDATE_GOLDENS=1 cargo test --test golden_schemas"
    );
}

fn cli(args: &[&str]) -> String {
    let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    run_cli(&v).expect("command succeeds")
}

#[test]
fn chaos_json_schema_matches_golden() {
    let json = cli(&["chaos", "--seed", "1", "--faults", "0.25", "--json"]);
    check_golden("chaos.schema.txt", &schema_of(&json));
}

#[test]
fn chaos_seed1_bytes_match_golden() {
    // Full-byte pin: the chaos report is a pure function of the seed.
    let json = cli(&["chaos", "--seed", "1", "--faults", "0.25", "--json"]);
    check_golden("chaos-seed1.json", &json);
}

#[test]
fn lint_json_schema_matches_golden() {
    let json = cli(&["lint", "--json"]);
    check_golden("lint.schema.txt", &schema_of(&json));
}

#[test]
fn audit_json_schema_matches_golden() {
    let json = cli(&["audit", "--json"]);
    check_golden("audit.schema.txt", &schema_of(&json));
}

#[test]
fn check_json_schema_matches_golden() {
    // The CC/PN/PF/RB analyzer over the real tree; pins the summary shape
    // including the per-family counts and hot-function tally.
    let json = cli(&["check", "--json"]);
    check_golden("check.schema.txt", &schema_of(&json));
}

#[test]
fn bench_json_schema_matches_golden() {
    // With wall stats: pins the full schema including the wall object
    // (whose values are machine-dependent and therefore schema-only).
    let json = cli(&["bench", "--json"]);
    check_golden("bench.schema.txt", &schema_of(&json));
}

#[test]
fn stats_snapshot_schema_matches_golden() {
    let path = std::env::temp_dir().join("pruneperf-golden-stats.json");
    let path_str = path.to_string_lossy().into_owned();
    cli(&[
        "profile",
        "--network",
        "alexnet",
        "--layer",
        "AlexNet.L6",
        "--stats",
        &path_str,
    ]);
    let json = std::fs::read_to_string(&path).expect("stats snapshot written");
    std::fs::remove_file(&path).ok();
    check_golden("stats.schema.txt", &schema_of(&json));
}

#[test]
fn chrome_trace_schema_matches_golden() {
    let path = std::env::temp_dir().join("pruneperf-golden-trace.json");
    let path_str = path.to_string_lossy().into_owned();
    cli(&["run", "--network", "alexnet", "--trace-out", &path_str]);
    let json = std::fs::read_to_string(&path).expect("trace written");
    std::fs::remove_file(&path).ok();
    check_golden("trace.schema.txt", &schema_of(&json));
}

#[test]
fn search_json_schema_matches_golden() {
    let json = cli(&[
        "search",
        "--network",
        "alexnet",
        "--algo",
        "evolve",
        "--generations",
        "8",
        "--beam-width",
        "6",
        "--seed",
        "3",
        "--json",
    ]);
    check_golden("search.schema.txt", &schema_of(&json));
}

#[test]
fn search_evolve_seed3_bytes_match_golden() {
    // Full-byte pin: the search report is a pure function of
    // (network, device, backend, algo, seed, μ, generations) — no RNG
    // state, no clocks, no schedule dependence.
    let json = cli(&[
        "search",
        "--network",
        "alexnet",
        "--algo",
        "evolve",
        "--generations",
        "8",
        "--beam-width",
        "6",
        "--seed",
        "3",
        "--json",
    ]);
    check_golden("search-evolve-seed3.json", &json);
}

//! Cross-crate integration: real tensors → catalogs → planners → simulator
//! → profiler → pruner, exercised together.

use pruneperf::models::weights;
use pruneperf::prelude::*;
use pruneperf::tensor::conv::{direct, im2col_gemm};
use pruneperf::tensor::prune;

/// Weight-level pruning, descriptor-level pruning and the latency model all
/// agree on what “92 channels” means.
#[test]
fn weight_descriptor_and_latency_views_are_consistent() {
    let layer = resnet50().layer("ResNet.L16").unwrap().clone();
    let pruned_spec = layer.with_c_out(92).unwrap();

    // Weight tensor side.
    let w = weights::synthetic_weights(&layer);
    let w_pruned = prune::prune_output_channels_to(&w, 92).unwrap();
    assert_eq!(w_pruned.shape().dims()[0], pruned_spec.c_out());

    // The pruned weights convolve to the pruned spec's output shape.
    let x = weights::synthetic_input(&layer);
    let y = direct::conv2d(&x, &w_pruned, layer.params()).unwrap();
    let (oh, ow) = pruned_spec.out_hw();
    assert_eq!(y.shape().dims(), [1, oh, ow, 92]);

    // The planner plans for exactly that channel count (split at 92).
    let device = Device::mali_g72_hikey970();
    let plan = AclGemm::new().plan(&pruned_spec, &device);
    assert_eq!(plan.kernels_named("gemm_mm").count(), 2);
}

/// The two convolution algorithms agree on a real catalog layer (scaled
/// down spatially to keep the test fast), so the FLOP accounting the
/// simulator consumes matches executable arithmetic.
#[test]
fn catalog_layer_convolves_identically_on_both_algorithms() {
    let layer = ConvLayerSpec::new("IT.L16", 3, 1, 1, 32, 24, 14, 14);
    let x = weights::synthetic_input(&layer);
    let w = weights::synthetic_weights(&layer);
    let a = direct::conv2d(&x, &w, layer.params()).unwrap();
    let b = im2col_gemm::conv2d(&x, &w, layer.params()).unwrap();
    assert!(a.all_close(&b, 1e-3));
    // MAC accounting matches the tensor dimensions end to end.
    assert_eq!(layer.macs(), 14 * 14 * 24 * 3 * 3 * 32,);
}

/// Full pipeline: profile → staircase → pruning plan, on every device.
#[test]
fn pruning_pipeline_runs_on_all_devices() {
    let network = vgg16();
    let accuracy = AccuracyModel::for_network(&network);
    for device in Device::all_paper_devices() {
        let profiler = LayerProfiler::noiseless(&device);
        let backend: Box<dyn pruneperf::backends::ConvBackend> = if device.is_cuda() {
            Box::new(Cudnn::new())
        } else {
            Box::new(AclGemm::new())
        };
        let pruner = PerfAwarePruner::new(&profiler, &accuracy);
        let plan = pruner.prune_to_latency(backend.as_ref(), &network, 0.9);
        assert!(plan.latency_ms() > 0.0, "{}", device.name());
        assert!(plan.accuracy() > 0.5, "{}", device.name());
        for layer in network.layers() {
            let kept = plan.kept_for(layer.label()).expect("every layer planned");
            assert!(kept >= 1 && kept <= layer.c_out());
        }
    }
}

/// Profiler timelines expose exactly the kernels the plans contain, with a
/// contiguous, ordered timeline.
#[test]
fn timelines_match_plans() {
    let device = Device::jetson_tx2();
    let profiler = LayerProfiler::new(&device);
    let backend = Cudnn::new();
    for layer in alexnet().layers() {
        let plan = backend.plan(layer, &device);
        let timeline = profiler.timeline(&backend, layer);
        assert_eq!(
            plan.chain().len(),
            timeline.kernels().len(),
            "{}",
            layer.label()
        );
        let mut prev_end = 0.0;
        for k in timeline.kernels() {
            assert!(k.start_us >= prev_end - 1e-9);
            assert!(k.end_us > k.start_us);
            prev_end = k.end_us;
        }
    }
}

/// Everything downstream of the simulator is deterministic run to run.
#[test]
fn full_stack_determinism() {
    let device = Device::mali_g72_hikey970();
    let layer = resnet50().layer("ResNet.L16").unwrap().clone();
    let run = || {
        let profiler = LayerProfiler::new(&device);
        let curve = profiler.latency_curve(&AclGemm::new(), &layer, 60..=128);
        let staircase = Staircase::detect(&curve);
        (
            curve.series(),
            staircase
                .optimal_points()
                .iter()
                .map(|p| p.channels)
                .collect::<Vec<_>>(),
        )
    };
    assert_eq!(run(), run());
}

/// Serde round trips for the analysis artifacts users would persist.
#[test]
fn analysis_artifacts_serialize() {
    let device = Device::jetson_nano();
    let profiler = LayerProfiler::new(&device);
    let layer = alexnet().layer("AlexNet.L6").unwrap().clone();
    let curve = profiler.latency_curve(&Cudnn::new(), &layer, 300..=384);
    // JSON float printing can lose the last ULP, so require a *stable fixed
    // point*: re-serializing the parsed value reproduces the same document.
    let json = serde_json::to_string(&curve).unwrap();
    let back: LatencyCurve = serde_json::from_str(&json).unwrap();
    assert_eq!(json, serde_json::to_string(&back).unwrap());
    assert_eq!(curve.points().len(), back.points().len());

    let staircase = Staircase::detect(&curve);
    let json = serde_json::to_string(&staircase).unwrap();
    let back: Staircase = serde_json::from_str(&json).unwrap();
    assert_eq!(json, serde_json::to_string(&back).unwrap());
    assert_eq!(staircase.steps().len(), back.steps().len());
}

//! End-to-end behaviour of `pruneperf search`: the JSON report is
//! byte-identical across worker counts and across a persist/reload
//! resume, the resumed run answers entirely from the restored cache, and
//! the flag surface rejects malformed input instead of guessing.

use pruneperf::cli::{run_cli, CliError};

fn run(args: &[&str]) -> Result<String, CliError> {
    let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    run_cli(&v)
}

fn search_json(extra: &[&str]) -> String {
    let mut args = vec![
        "search",
        "--network",
        "alexnet",
        "--beam-width",
        "6",
        "--json",
    ];
    args.extend_from_slice(extra);
    run(&args).expect("search succeeds")
}

/// The determinism contract, at the CLI boundary: `--jobs 1` and
/// `--jobs 8` render the same bytes.
#[test]
fn search_json_is_byte_identical_across_worker_counts() {
    let sequential = search_json(&["--jobs", "1"]);
    let parallel = search_json(&["--jobs", "8"]);
    assert_eq!(sequential, parallel);
    assert!(sequential.contains("\"algo\": \"beam\""), "{sequential}");
    assert!(sequential.contains("\"front\""), "{sequential}");
}

/// Persist/resume invariance: an interrupted-and-resumed search (cache
/// persisted to disk, reloaded by a second process-equivalent run)
/// renders byte-identical JSON to an uninterrupted run — the report
/// carries no cold-vs-warm observable.
#[test]
fn search_resumed_from_a_persisted_cache_is_byte_identical() {
    let path =
        std::env::temp_dir().join(format!("pruneperf-search-cache-{}.txt", std::process::id()));
    let path_str = path.to_string_lossy().into_owned();
    std::fs::remove_file(&path).ok();

    let uninterrupted = search_json(&[]);
    let cold = search_json(&["--persist", &path_str]);
    let snapshot_after_cold = std::fs::read_to_string(&path).expect("cache persisted");
    let resumed = search_json(&["--persist", &path_str]);
    let snapshot_after_resume = std::fs::read_to_string(&path).expect("cache re-persisted");
    std::fs::remove_file(&path).ok();

    assert_eq!(uninterrupted, cold);
    assert_eq!(cold, resumed);
    // The persisted bytes are idempotent too: re-persisting the reloaded
    // cache reproduces the file exactly.
    assert_eq!(snapshot_after_cold, snapshot_after_resume);
    assert!(snapshot_after_cold.starts_with("pruneperf-latency-cache v1 "));
}

/// The human rendering of a resumed run proves the cache did the work:
/// a 100% hit rate and zero misses.
#[test]
fn search_resumed_run_reports_a_full_hit_rate() {
    let path =
        std::env::temp_dir().join(format!("pruneperf-search-hits-{}.txt", std::process::id()));
    let path_str = path.to_string_lossy().into_owned();
    std::fs::remove_file(&path).ok();

    run(&[
        "search",
        "--network",
        "alexnet",
        "--beam-width",
        "4",
        "--persist",
        &path_str,
    ])
    .expect("cold search succeeds");
    let resumed = run(&[
        "search",
        "--network",
        "alexnet",
        "--beam-width",
        "4",
        "--persist",
        &path_str,
    ])
    .expect("resumed search succeeds");
    std::fs::remove_file(&path).ok();

    assert!(resumed.contains("0 misses"), "{resumed}");
    assert!(resumed.contains("(100.0% hit rate)"), "{resumed}");
    assert!(resumed.contains("entries reloaded from"), "{resumed}");
}

/// A corrupt persist file is a clean error with the offending line, and
/// the search does not run against a half-restored cache.
#[test]
fn search_rejects_a_corrupt_persist_file() {
    let path = std::env::temp_dir().join(format!(
        "pruneperf-search-corrupt-{}.txt",
        std::process::id()
    ));
    let path_str = path.to_string_lossy().into_owned();
    std::fs::write(&path, "pruneperf-latency-cache v1 entries=1\ngarbage\n").expect("write");
    let err = run(&["search", "--network", "alexnet", "--persist", &path_str])
        .expect_err("corrupt cache rejected");
    std::fs::remove_file(&path).ok();
    assert!(err.0.contains("cannot reload cache"), "{}", err.0);
    assert!(err.0.contains("line 2"), "{}", err.0);
}

/// Both algorithms resolve, and the seed changes evolve's trajectory but
/// never beam's measurements.
#[test]
fn search_algorithms_and_seeds_behave() {
    let e1 = search_json(&["--algo", "evolve", "--seed", "1", "--generations", "4"]);
    let e2 = search_json(&["--algo", "evolve", "--seed", "2", "--generations", "4"]);
    assert!(e1.contains("\"algo\": \"evolve\""), "{e1}");
    assert_ne!(e1, e2, "different seeds must explore differently");
    let e1_again = search_json(&["--algo", "evolve", "--seed", "1", "--generations", "4"]);
    assert_eq!(e1, e1_again, "same seed must reproduce exactly");
}

/// Malformed input is reported, not ignored.
#[test]
fn search_rejects_malformed_flags() {
    for (args, needle) in [
        (vec!["search"], "unknown network"),
        (
            vec!["search", "--network", "alexnet", "--algo", "anneal"],
            "unknown algo",
        ),
        (
            vec!["search", "--network", "alexnet", "--beam-width", "wide"],
            "--beam-width",
        ),
        (
            vec!["search", "--network", "alexnet", "--seed"],
            "needs a value",
        ),
        (
            vec!["search", "--network", "alexnet", "--frobnicate", "1"],
            "unexpected argument",
        ),
    ] {
        let err = run(&args).expect_err("malformed flags rejected");
        assert!(err.0.contains(needle), "args {args:?}: {}", err.0);
    }
}

/// `--cache-cap` bounds the cache without changing the front: the search
/// re-measures what the bound evicted, so the report stays byte-stable.
#[test]
fn search_with_a_bounded_cache_is_byte_identical() {
    let unbounded = search_json(&[]);
    let bounded = search_json(&["--cache-cap", "8"]);
    assert_eq!(unbounded, bounded);
}

//! Integration tests pinning the paper's headline findings across crates.
//!
//! Abstract: “a reduction in the number of convolutional channels, pruning
//! 12% of the initial size, is in some cases detrimental to performance,
//! leading to 2× slowdown. … performance-aware pruning achieves the
//! intended results, with performance speedups of 3× with cuDNN and above
//! 10× with Arm Compute Library and TVM.”

use pruneperf::core::analysis;
use pruneperf::prelude::*;

#[test]
fn pruning_12_percent_can_double_latency_on_acl_gemm() {
    // Pruning 7 of 64 channels (~11-12%) lands every 64-channel layer on
    // the split configuration: c4 = 60, 60 % 8 != 0.
    let device = Device::mali_g72_hikey970();
    let backend = AclGemm::new();
    let layer = resnet50().layer("ResNet.L2").unwrap().clone();
    assert_eq!(layer.c_out(), 64);
    let t0 = backend.latency_ms(&layer, &device);
    let t = backend.latency_ms(&layer.pruned_by(7).unwrap(), &device);
    assert!(
        t / t0 > 1.5,
        "pruning ~11% should slow the layer ~2x, got {:.2}x",
        t / t0
    );
    assert!(
        t / t0 < 3.0,
        "slowdown {:.2}x beyond the paper's band",
        t / t0
    );
}

#[test]
fn cudnn_reaches_3x_speedup_with_aware_pruning() {
    let device = Device::jetson_tx2();
    let profiler = LayerProfiler::noiseless(&device);
    let heatmap = analysis::speedup_table(
        &profiler,
        &Cudnn::new(),
        &resnet50(),
        &analysis::PAPER_DISTANCES,
    );
    let max = heatmap.max_ratio();
    assert!(max >= 3.0, "cuDNN max speedup {max:.2}, paper reports 3.3x");
    assert!(
        max <= 5.0,
        "cuDNN max speedup {max:.2} beyond the paper's band"
    );
}

#[test]
fn acl_direct_exceeds_10x_speedup_with_aware_pruning() {
    let device = Device::mali_g72_hikey970();
    let profiler = LayerProfiler::noiseless(&device);
    let heatmap = analysis::speedup_table(
        &profiler,
        &AclDirect::new(),
        &resnet50(),
        &analysis::PAPER_DISTANCES,
    );
    assert!(
        heatmap.max_ratio() > 10.0,
        "ACL direct max speedup {:.1}, paper reports 16.9x",
        heatmap.max_ratio()
    );
}

#[test]
fn tvm_pruning_by_one_can_be_catastrophic() {
    // Fig 19's 0.0x cells: one pruned channel pushes the layer off the
    // tuning log onto the fallback schedule.
    let device = Device::mali_g72_hikey970();
    let backend = Tvm::new();
    let mut worst = f64::INFINITY;
    for layer in resnet50().layers() {
        let t0 = backend.latency_ms(layer, &device);
        let t1 = backend.latency_ms(&layer.pruned_by(1).unwrap(), &device);
        worst = worst.min(t0 / t1);
    }
    assert!(
        worst < 0.15,
        "worst TVM prune-by-one speedup {worst:.2}, paper rounds to 0.0x"
    );
}

#[test]
fn staircases_exist_on_every_device_library_pair() {
    // §II-B: the staircase is the common structure across all stacks.
    let layer = resnet50().layer("ResNet.L16").unwrap().clone();
    let cases: Vec<(Device, Box<dyn pruneperf::backends::ConvBackend>)> = vec![
        (Device::mali_g72_hikey970(), Box::new(AclGemm::new())),
        (Device::mali_g72_hikey970(), Box::new(AclDirect::new())),
        (Device::mali_t628_odroidxu4(), Box::new(AclGemm::new())),
        (Device::jetson_tx2(), Box::new(Cudnn::new())),
        (Device::jetson_nano(), Box::new(Cudnn::new())),
    ];
    for (device, backend) in cases {
        let profiler = LayerProfiler::noiseless(&device);
        let curve = profiler.latency_curve(backend.as_ref(), &layer, 1..=128);
        let staircase = Staircase::detect(&curve);
        assert!(
            staircase.steps().len() >= 3,
            "{} on {}: expected a staircase, got {} steps",
            backend.name(),
            device.name(),
            staircase.steps().len()
        );
        assert!(
            staircase.optimal_points().len() < 128,
            "{} on {}: a staircase must collapse candidates",
            backend.name(),
            device.name()
        );
    }
}

#[test]
fn performance_aware_pruning_beats_uninstructed_at_matched_accuracy() {
    let device = Device::mali_g72_hikey970();
    let network = resnet50();
    let backend = AclGemm::new();
    let profiler = LayerProfiler::noiseless(&device);
    let accuracy = AccuracyModel::for_network(&network);

    let aware = PerfAwarePruner::new(&profiler, &accuracy);
    let naive = UninstructedPruner::new(&profiler, &accuracy);

    // The uninstructed plan prunes 7 channels everywhere — on ACL GEMM this
    // lands the 64-channel layers on split configurations.
    let naive_plan = naive.prune_by_distance(&backend, &network, 7);
    // Some performance-aware plan must dominate it: at least as accurate
    // AND faster.
    let plans = aware.pareto_plans(&backend, &network, &[1.0, 0.95, 0.9, 0.8]);
    let dominating = plans.iter().find(|p| {
        p.accuracy() + 1e-9 >= naive_plan.accuracy() && p.latency_ms() < naive_plan.latency_ms()
    });
    assert!(
        dominating.is_some(),
        "no perf-aware plan dominates uninstructed ({:.1} ms @ {:.4}); front: {:?}",
        naive_plan.latency_ms(),
        naive_plan.accuracy(),
        plans
            .iter()
            .map(|p| (p.latency_ms(), p.accuracy()))
            .collect::<Vec<_>>()
    );
}

#[test]
fn no_library_dominates_on_mali() {
    // §V: “no optimal library exists to outperform across all neural
    // network layers.”
    let device = Device::mali_g72_hikey970();
    let backends: Vec<Box<dyn pruneperf::backends::ConvBackend>> = vec![
        Box::new(AclDirect::new()),
        Box::new(AclGemm::new()),
        Box::new(Tvm::new()),
    ];
    let mut wins = vec![0usize; backends.len()];
    for network in [resnet50(), vgg16(), alexnet()] {
        for layer in network.layers() {
            let times: Vec<f64> = backends
                .iter()
                .map(|b| b.latency_ms(layer, &device))
                .collect();
            let best = times
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.total_cmp(b.1))
                .unwrap()
                .0;
            wins[best] += 1;
        }
    }
    let losers = wins.iter().filter(|&&w| w == 0).count();
    assert!(
        losers < backends.len() - 1,
        "exactly one library won everything: {wins:?}"
    );
}

//! Cross-stack validation: the simulator's analytical instruction counts
//! stay anchored to the *executable* arithmetic of the tensor substrate.
//!
//! These tests are the glue that keeps the behavioural models honest — if
//! someone edits a backend's cost constants into nonsense, the ratios to
//! real MAC counts drift and these tests fail.

use pruneperf::models::weights;
use pruneperf::prelude::*;
use pruneperf::tensor::conv::im2col_gemm;

/// The ACL GEMM model retires ~156.5 scalar-equivalent instructions per
/// 4x4-tile K element, i.e. ~9.78 per MAC (Tables I–IV). Check the ratio
/// over a spread of real layers.
#[test]
fn acl_gemm_instructions_track_macs() {
    let device = Device::mali_g72_hikey970();
    let backend = AclGemm::new();
    for label in ["ResNet.L5", "ResNet.L16", "ResNet.L29", "VGG.L10"] {
        let layer = if label.starts_with("VGG") {
            vgg16().layer(label).unwrap().clone()
        } else {
            resnet50().layer(label).unwrap().clone()
        };
        let plan = backend.plan(&layer, &device);
        let gemm_arith: u64 = plan
            .kernels_named("gemm_mm")
            .map(|k| k.total_arith())
            .sum::<u64>()
            .max(1);
        // Padded column counts inflate the ratio a little; bound it.
        let macs = layer.macs().max(1);
        let per_mac = gemm_arith as f64 / macs as f64;
        assert!(
            (8.0..14.0).contains(&per_mac),
            "{label}: {per_mac:.2} instructions per MAC"
        );
    }
}

/// Executable arithmetic agrees with the analytical MAC count: running the
/// convolution really performs `macs()` multiply–accumulates (verified via
/// the FLOP-counting identity rather than instrumentation: output of a
/// conv with all-ones input and weights equals the per-position tap count).
#[test]
fn analytical_macs_match_executed_taps() {
    // All-ones input and weights: each output element equals the number of
    // in-bounds taps; summing over the output gives the exact MAC count.
    let layer = pruneperf::core::testkit::val_layer("Val.L0", 1);
    let ones_in = Tensor::from_fn([1, 14, 14, 8], |_| 1.0);
    let ones_w = Tensor::from_fn([12, 3, 3, 8], |_| 1.0);
    let out = im2col_gemm::conv2d(&ones_in, &ones_w, layer.params()).unwrap();
    let executed_macs: f64 = out.as_slice().iter().map(|&v| v as f64).sum();
    // With zero padding, border positions have fewer taps; the analytical
    // count assumes full taps, so executed <= analytical and within the
    // border fraction.
    let analytical = layer.macs() as f64;
    assert!(executed_macs <= analytical);
    assert!(
        executed_macs > analytical * 0.85,
        "executed {executed_macs} vs analytical {analytical}"
    );
    // Valid padding: exact equality.
    let layer_valid = pruneperf::core::testkit::val_layer("Val.L1", 0);
    let out_valid = im2col_gemm::conv2d(&ones_in, &ones_w, layer_valid.params()).unwrap();
    let executed_valid: f64 = out_valid.as_slice().iter().map(|&v| v as f64).sum();
    assert_eq!(executed_valid as u64, layer_valid.macs());
}

/// The accuracy surrogate's channel importances come from the same weights
/// the tensor substrate convolves with — prune the lowest-L1 channel and
/// the surrogate's loss matches the removed mass.
#[test]
fn accuracy_surrogate_tracks_weight_magnitudes() {
    let net = alexnet();
    let model = AccuracyModel::for_network(&net);
    let layer = net.layer("AlexNet.L6").unwrap();
    let norms = weights::channel_l1_norms(layer);
    let total: f32 = norms.iter().sum();
    let min_norm = norms.iter().cloned().fold(f32::INFINITY, f32::min);
    let expected_mass = (min_norm / total) as f64;
    let measured_mass = model.pruned_mass(layer.label(), layer.c_out() - 1).unwrap();
    assert!(
        (measured_mass - expected_mass).abs() < 1e-9,
        "mass {measured_mass} vs expected {expected_mass}"
    );
}

/// Energy scales with work across the stack: doubling a layer's channels
/// roughly doubles modelled energy (fixed costs aside).
#[test]
fn energy_tracks_work() {
    let device = Device::jetson_tx2();
    let backend = Cudnn::new();
    let layer = resnet50().layer("ResNet.L14").unwrap().clone();
    let e256 = backend.energy_mj(&layer.with_c_out(256).unwrap(), &device);
    let e512 = backend.energy_mj(&layer.with_c_out(512).unwrap(), &device);
    let ratio = e512 / e256;
    assert!(
        (1.7..2.3).contains(&ratio),
        "energy ratio {ratio:.2} for 2x channels"
    );
}

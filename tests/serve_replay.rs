//! Replay-mode golden: the serving stack's determinism contract.
//!
//! One checked-in trace exercises every response kind — clean plans, a
//! statically deduplicated duplicate, an admission-control shed, a
//! degraded plan under a fault seed, a name refusal and a parse error —
//! and the rendered stream must be byte-identical to the golden at any
//! `--jobs`. Regenerate with `PRUNEPERF_UPDATE_GOLDENS=1 cargo test
//! --test serve_replay` after an intentional protocol change.

use std::path::PathBuf;

use pruneperf::cli::run_cli;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/goldens")
        .join(name)
}

fn replay(jobs: &str) -> String {
    let trace = golden_path("serve_trace.jsonl");
    let args: Vec<String> = [
        "serve",
        "--replay",
        trace.to_str().expect("trace path is utf-8"),
        "--workers",
        "2",
        "--queue",
        "1",
        "--service-ms",
        "5",
        "--jobs",
        jobs,
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    run_cli(&args).expect("replay succeeds")
}

#[test]
fn replay_stream_matches_golden_at_any_jobs() {
    let one = replay("1");
    let eight = replay("8");
    assert_eq!(
        one, eight,
        "replay output must be byte-identical across --jobs"
    );

    let path = golden_path("serve_replay.golden.jsonl");
    if std::env::var_os("PRUNEPERF_UPDATE_GOLDENS").is_some() {
        std::fs::write(&path, &one).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden serve_replay.golden.jsonl ({e}); \
             run with PRUNEPERF_UPDATE_GOLDENS=1 to create it"
        )
    });
    assert_eq!(
        expected, one,
        "serve replay golden drifted; if intentional, regenerate with \
         PRUNEPERF_UPDATE_GOLDENS=1 cargo test --test serve_replay"
    );
}

#[test]
fn the_trace_covers_every_response_kind() {
    let out = replay("2");
    assert!(out.contains("\"status\":\"ok\""), "{out}");
    assert!(out.contains("\"deduped\":true"), "{out}");
    assert!(out.contains("\"status\":\"shed\""), "{out}");
    assert!(out.contains("\"degraded\":true"), "{out}");
    assert!(out.contains("unknown network"), "{out}");
    assert!(out.contains("malformed request JSON"), "{out}");
    let lines = out.lines().count();
    assert_eq!(lines, 9, "one response per trace line:\n{out}");
}

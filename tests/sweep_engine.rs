//! End-to-end checks of the parallel, cache-backed sweep engine: cached
//! values are bitwise-identical to uncached simulator output, and worker
//! count never changes any result.

use pruneperf_backends::{AclGemm, ConvBackend, Cudnn};
use pruneperf_gpusim::Device;
use pruneperf_models::{alexnet, resnet50};
use pruneperf_profiler::{sweep, LatencyCache, LayerProfiler, NetworkRunner};

#[test]
fn cached_latency_is_bitwise_equal_to_direct_simulation() {
    let device = Device::mali_g72_hikey970();
    let backend = AclGemm::new();
    let layer = resnet50().layer("ResNet.L16").unwrap().clone();
    let cache = LatencyCache::new();
    for c in 1..=layer.c_out() {
        let pruned = layer.with_c_out(c).unwrap();
        let direct = (
            backend.latency_ms(&pruned, &device),
            backend.energy_mj(&pruned, &device),
        );
        assert_eq!(cache.cost(&backend, &pruned, &device), direct, "c={c} miss");
        assert_eq!(cache.cost(&backend, &pruned, &device), direct, "c={c} hit");
    }
    let stats = cache.stats();
    assert_eq!(stats.entries, layer.c_out());
    assert_eq!(stats.hits, layer.c_out() as u64);
}

#[test]
fn profiler_through_cache_matches_paper_measurement_contract() {
    let device = Device::jetson_tx2();
    let backend = Cudnn::new();
    let layer = resnet50().layer("ResNet.L16").unwrap().clone();
    // The noiseless profiler reports exactly one uncached-equivalent run.
    let noiseless = LayerProfiler::noiseless(&device);
    let m = noiseless.measure(&backend, &layer);
    assert_eq!(m.median_ms(), backend.latency_ms(&layer, &device));
    // Noisy measurements stay reproducible when served from cache.
    let noisy = LayerProfiler::new(&device);
    assert_eq!(
        noisy.measure(&backend, &layer),
        noisy.measure(&backend, &layer)
    );
}

#[test]
fn sweeps_are_worker_count_invariant() {
    let device = Device::mali_g72_hikey970();
    let backend = AclGemm::new();
    let layer = alexnet().layer("AlexNet.L6").unwrap().clone();
    let profiler = LayerProfiler::new(&device);
    sweep::set_sweep_jobs(1);
    let sequential = profiler.latency_curve(&backend, &layer, 1..=layer.c_out());
    sweep::set_sweep_jobs(8);
    let parallel = profiler.latency_curve(&backend, &layer, 1..=layer.c_out());
    sweep::set_sweep_jobs(1);
    assert_eq!(sequential, parallel);
}

#[test]
fn network_runner_uses_the_shared_cache() {
    let device = Device::mali_g72_hikey970();
    let backend = AclGemm::new();
    let before = LatencyCache::global().stats();
    let a = NetworkRunner::new(&device).run(&backend, &alexnet());
    let b = NetworkRunner::new(&device).run(&backend, &alexnet());
    let after = LatencyCache::global().stats();
    assert_eq!(a, b);
    assert!(
        after.hits >= before.hits + alexnet().layers().len() as u64,
        "second run should be served from cache: {before:?} -> {after:?}"
    );
}

#[test]
fn resolve_jobs_prefers_explicit_value() {
    assert_eq!(sweep::resolve_jobs(Some(5)), 5);
    assert!(sweep::resolve_jobs(None) >= 1);
}

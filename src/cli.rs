//! Implementation of the `pruneperf` command-line tool.
//!
//! Kept in the library so argument resolution and command execution are
//! unit-testable; `src/bin/pruneperf.rs` is a thin wrapper.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use pruneperf_backends::ConvBackend;
use pruneperf_core::accuracy::AccuracyModel;
use pruneperf_core::{report, sensitivity, PerfAwarePruner, Staircase};
use pruneperf_gpusim::{render_trace, ChromeEvent, Device, Engine};
use pruneperf_models::{alexnet, mobilenet_v1, resnet50, vgg16, Network};
use pruneperf_profiler::{
    sweep, LatencyCache, LayerProfiler, NetworkRunner, Stats, ThermalGovernor,
};
use pruneperf_serve::replay::{replay_trace_with, ReplayOptions};
use pruneperf_serve::{run_loadgen, LoadgenOptions, PlanService, Server, ServerOptions};

/// A CLI failure with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

fn err(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

/// Resolves a device short name. Delegates to the serving catalog so
/// the daemon and the one-shot commands agree on names and messages.
pub fn device_by_name(name: &str) -> Result<Device, CliError> {
    pruneperf_serve::catalog::device_by_name(name).map_err(err)
}

/// Resolves a backend short name.
pub fn backend_by_name(name: &str) -> Result<Box<dyn ConvBackend>, CliError> {
    pruneperf_serve::catalog::backend_by_name(name).map_err(err)
}

/// Resolves a network short name.
pub fn network_by_name(name: &str) -> Result<Network, CliError> {
    pruneperf_serve::catalog::network_by_name(name).map_err(err)
}

/// Parses `--key value` pairs after the subcommand.
///
/// Duplicate flags are an error, not a silent last-wins: `profile
/// --device tx2 --device nano` used to quietly profile nano.
fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, CliError> {
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let Some(key) = a.strip_prefix("--") else {
            return Err(err(format!(
                "unexpected argument '{a}' (flags are --key value)"
            )));
        };
        let Some(value) = it.next() else {
            return Err(err(format!("flag --{key} needs a value")));
        };
        if flags.insert(key.to_string(), value.clone()).is_some() {
            return Err(err(format!(
                "duplicate flag --{key} (each flag may be given once)"
            )));
        }
    }
    Ok(flags)
}

fn flag<'a>(flags: &'a HashMap<String, String>, key: &str, default: &'a str) -> &'a str {
    flags.get(key).map(String::as_str).unwrap_or(default)
}

/// Writes a side-channel artifact (trace, stats snapshot, bench report).
///
/// Part of the fallible API surface (a `PN` reachability root): a full
/// disk or bad path must surface as a [`CliError`], never a panic, since
/// long-running `serve` processes hit these writes repeatedly.
fn try_write_file(path: &str, contents: &str, what: &str) -> Result<(), CliError> {
    std::fs::write(path, contents).map_err(|e| err(format!("cannot write {what} to '{path}': {e}")))
}

/// The usage text.
pub const USAGE: &str = "\
usage: pruneperf <command> [--key value ...]

commands:
  devices                                 list the simulated devices
  networks                                list the layer catalogs
  profile   --network N --layer L [--backend B] [--device D] [--format text|csv]
            [--trace-out PATH] [--stats PATH]
            sweep a layer's channel count and print the staircase;
            --trace-out writes a Chrome-trace JSON of the sweep in virtual
            time, --stats a counter-registry snapshot
  prune     --network N [--backend B] [--device D] [--budget F] [--objective latency|energy]
            run the performance-aware pruning loop
  run       --network N [--backend B] [--device D] [--trace-out PATH] [--stats PATH]
            execute every layer once; per-layer latency/energy + thermal steady state
  gantt     --network N --layer L [--backend B] [--device D] [--channels C]
            per-core schedule of one layer's dispatch plan
  sensitivity --network N [--backend B] [--device D]
            per-layer latency/accuracy response at 75/50/25% kept channels
  report    --network N [--backend B] [--device D] [--budget F]
            markdown pruning-campaign report (staircases, plans, verdict)
  lint      [--json] [--deny-warnings] [--root PATH]
            static analysis: audit every backend's dispatch plans against
            the paper invariants and lint the sources for determinism
  audit     [--json] [--deny-warnings]
            verify whole-network dataflow (stock + pruned assemblies,
            greedy pruning plans) and audit simulator schedule traces
  check     [--json] [--deny-warnings] [--root PATH]
            concurrency, panic-path, hot-path & resource analysis:
            lock-order cycles, guards held across fan-out, panic sources
            on the fallible API, per-iteration allocation/locking on the
            serving/search hot paths, and unbounded growth (CC/PN/PF/RB)
  chaos     [--seed S] [--faults RATE] [--jobs N] [--json] [--trace-out PATH]
            deterministic fault-injection drill: transient-fault retries,
            permanent-fault curve gaps, contained worker panics, poisoned
            cache recovery — and a byte-identity check across worker counts
  search    --network N [--backend B] [--device D] [--algo beam|evolve]
            [--beam-width N] [--generations N] [--seed S] [--json]
            [--out PATH] [--cache-cap N] [--persist PATH]
            whole-network multi-objective pruning search: a deterministic
            beam or (μ+λ) evolutionary pass over joint per-layer channel
            vectors, reporting the (latency, energy, accuracy) Pareto
            front. Every plan is verified (NV001–NV008) before it is
            reported. --persist reloads/saves the latency cache so a
            resumed search answers from the table; output is byte-stable
            across --jobs and resume
  bench     [--json] [--no-wall] [--out PATH] [--check BASELINE]
            fixed micro-benchmark suite; deterministic virtual metrics are
            regression-diffed against a checked-in baseline (BENCH_PR10.json)
            with --check, wall-clock medians ride along unless --no-wall
  serve     [--addr A] [--workers N] [--queue N] [--cache-cap N]
            [--max-requests N] [--replay PATH] [--service-ms F]
            [--stats PATH] [--trace-out PATH]
            pruning-plan daemon: POST /plan takes one JSON request line,
            GET /stats the counter registry; bounded per-worker queues
            shed excess load with 429, the latency cache is bounded per
            --cache-cap (0 = unbounded), and faulty verification runs
            degrade responses instead of dropping them. --replay answers
            a request trace deterministically on stdout (no sockets);
            --trace-out writes the virtual-time admission timeline
  loadgen   [--seed S] [--requests N] [--workers N] [--queue N]
            [--service-ms F] [--cache-cap N]
            seeded synthetic request mix through the replay pipeline;
            reports shed/dedup/degraded tallies and virtual latency
            percentiles, byte-identical at any --jobs

every command also accepts --jobs N: worker threads for channel sweeps
(default: all cores; the PRUNEPERF_JOBS environment variable overrides)

defaults: --backend acl-gemm, --device hikey970, --budget 0.8";

/// Executes a command line (without the program name); returns the output
/// to print.
///
/// # Errors
///
/// Returns a [`CliError`] with a user-facing message for unknown commands,
/// flags, or names.
pub fn run_cli(args: &[String]) -> Result<String, CliError> {
    let Some(command) = args.first() else {
        return Err(err(USAGE));
    };
    if command == "lint" {
        // `lint` takes boolean flags, which `parse_flags` (strict
        // `--key value` pairs) cannot express.
        return cmd_lint(&args[1..]);
    }
    if command == "audit" {
        // Boolean flags, like `lint`.
        return cmd_audit(&args[1..]);
    }
    if command == "check" {
        // Boolean flags, like `lint`.
        return cmd_check(&args[1..]);
    }
    if command == "chaos" {
        // Boolean flags, like `lint`; also manages the worker count
        // itself (it runs at two counts and compares).
        return cmd_chaos(&args[1..]);
    }
    if command == "bench" {
        // Boolean flags, like `lint`.
        return cmd_bench(&args[1..]);
    }
    if command == "search" {
        // Boolean flags, like `bench`.
        return cmd_search(&args[1..]);
    }
    let mut flags = parse_flags(&args[1..])?;
    let jobs = match flags.remove("jobs") {
        Some(v) => Some(
            v.parse::<usize>()
                .map_err(|_| err("--jobs must be a non-negative integer"))?,
        ),
        None => None,
    };
    sweep::set_sweep_jobs(sweep::resolve_jobs(jobs));
    match command.as_str() {
        "devices" => Ok(cmd_devices()),
        "networks" => Ok(cmd_networks()),
        "profile" => cmd_profile(&flags),
        "prune" => cmd_prune(&flags),
        "run" => cmd_run(&flags),
        "gantt" => cmd_gantt(&flags),
        "sensitivity" => cmd_sensitivity(&flags),
        "report" => cmd_report(&flags),
        "serve" => cmd_serve(&flags),
        "loadgen" => cmd_loadgen(&flags),
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        other => Err(err(format!("unknown command '{other}'\n{USAGE}"))),
    }
}

/// The CLI short names, paired with their devices.
fn named_devices() -> [(&'static str, Device); 4] {
    pruneperf_serve::catalog::named_devices()
}

fn cmd_devices() -> String {
    let mut out = String::new();
    for (short, d) in named_devices() {
        out.push_str(&format!(
            "{short:<12} {} — {} GB/s DRAM, {} KiB L2, {} MiB GPU heap\n",
            d,
            d.dram_gbs(),
            d.l2_kib(),
            d.gpu_heap_mib()
        ));
    }
    out
}

fn cmd_networks() -> String {
    let mut out = String::new();
    for net in [resnet50(), vgg16(), alexnet(), mobilenet_v1()] {
        out.push_str(&format!(
            "{:<38} {:>6.2} GMACs\n",
            net.to_string(),
            net.total_macs() as f64 / 1e9
        ));
        for layer in net.layers() {
            out.push_str(&format!("  {layer}\n"));
        }
    }
    out
}

fn layer_from_flags(
    flags: &HashMap<String, String>,
) -> Result<pruneperf_models::ConvLayerSpec, CliError> {
    let network = network_by_name(flag(flags, "network", ""))?;
    let label = flags
        .get("layer")
        .ok_or_else(|| err("--layer is required"))?;
    network
        .layer(label)
        .cloned()
        .ok_or_else(|| err(format!("network has no layer '{label}'")))
}

fn cmd_profile(flags: &HashMap<String, String>) -> Result<String, CliError> {
    let device = device_by_name(flag(flags, "device", "hikey970"))?;
    let backend = backend_by_name(flag(flags, "backend", "acl-gemm"))?;
    let layer = layer_from_flags(flags)?;
    let cache = Arc::new(LatencyCache::new());
    let stats = Arc::new(Stats::new());
    let mut profiler = LayerProfiler::new(&device);
    if flags.contains_key("stats") {
        // An isolated registry, so the snapshot covers exactly this sweep.
        profiler = profiler.with_cache(cache.clone()).with_stats(stats.clone());
    }
    let curve = profiler.latency_curve(backend.as_ref(), &layer, 1..=layer.c_out());
    if let Some(path) = flags.get("trace-out") {
        let events = profiler.sweep_events(backend.as_ref(), &layer, 1..=layer.c_out());
        try_write_file(path, &render_trace(&events), "Chrome trace")?;
    }
    if let Some(path) = flags.get("stats") {
        try_write_file(
            path,
            &stats.snapshot_with_cache(&cache).render_json(),
            "stats snapshot",
        )?;
    }
    match flag(flags, "format", "text") {
        "csv" => Ok(curve.to_csv()),
        "text" => {
            let staircase = Staircase::detect(&curve);
            let mut out = format!("{curve}\n");
            out.push_str(&curve.ascii_plot(84, 14));
            out.push_str(&staircase.to_string());
            out.push_str("optimal pruning candidates:\n");
            for p in staircase.optimal_points() {
                out.push_str(&format!(
                    "  keep {:>5} channels -> {:>9.3} ms\n",
                    p.channels, p.ms
                ));
            }
            Ok(out)
        }
        other => Err(err(format!("unknown format '{other}' (text | csv)"))),
    }
}

fn cmd_prune(flags: &HashMap<String, String>) -> Result<String, CliError> {
    let device = device_by_name(flag(flags, "device", "hikey970"))?;
    let backend = backend_by_name(flag(flags, "backend", "acl-gemm"))?;
    let network = network_by_name(flag(flags, "network", ""))?;
    let budget: f64 = flag(flags, "budget", "0.8")
        .parse()
        .map_err(|_| err("--budget must be a number in (0, 1]"))?;
    if !(budget > 0.0 && budget <= 1.0) {
        return Err(err("--budget must be a number in (0, 1]"));
    }
    let profiler = LayerProfiler::noiseless(&device);
    let accuracy = AccuracyModel::for_network(&network);
    let pruner = PerfAwarePruner::new(&profiler, &accuracy);
    let plan = match flag(flags, "objective", "latency") {
        "latency" => pruner.prune_to_latency(backend.as_ref(), &network, budget),
        "energy" => pruner.prune_to_energy(backend.as_ref(), &network, budget),
        other => {
            return Err(err(format!(
                "unknown objective '{other}' (latency | energy)"
            )))
        }
    };
    let mut out = format!(
        "{plan}\nenergy: {:.2} mJ\nper-layer keeps:\n",
        plan.energy_mj()
    );
    for layer in network.layers() {
        let kept = plan.kept_for(layer.label()).unwrap_or(layer.c_out());
        if kept != layer.c_out() {
            out.push_str(&format!(
                "  {:<15} {:>5} -> {:>5}\n",
                layer.label(),
                layer.c_out(),
                kept
            ));
        }
    }
    Ok(out)
}

fn cmd_run(flags: &HashMap<String, String>) -> Result<String, CliError> {
    let device = device_by_name(flag(flags, "device", "hikey970"))?;
    let backend = backend_by_name(flag(flags, "backend", "acl-gemm"))?;
    let network = network_by_name(flag(flags, "network", ""))?;
    let cache = Arc::new(LatencyCache::new());
    let stats = Arc::new(Stats::new());
    let mut runner = NetworkRunner::new(&device);
    if flags.contains_key("stats") {
        // An isolated registry, so the snapshot covers exactly this run.
        runner = runner.with_cache(cache.clone()).with_stats(stats.clone());
    }
    let report = runner.run(backend.as_ref(), &network);
    if let Some(path) = flags.get("trace-out") {
        let trace = runner.trace_run(backend.as_ref(), &network);
        try_write_file(path, &trace.to_chrome_json(), "Chrome trace")?;
    }
    if let Some(path) = flags.get("stats") {
        try_write_file(
            path,
            &stats.snapshot_with_cache(&cache).render_json(),
            "stats snapshot",
        )?;
    }
    let governor = ThermalGovernor::passive_soc();
    let mut out = format!("{:<15} {:>10} {:>10}\n", "layer", "ms", "mJ");
    for l in report.layers() {
        out.push_str(&format!("{:<15} {:>10.3} {:>10.3}\n", l.label, l.ms, l.mj));
    }
    out.push_str(&format!(
        "total: {:.2} ms, {:.2} mJ, {:.0} mW average\n",
        report.total_ms(),
        report.total_mj(),
        report.average_power_mw()
    ));
    out.push_str(&format!(
        "sustained (thermal steady state): {:.2} ms\n",
        governor.steady_state_ms(&report)
    ));
    Ok(out)
}

fn cmd_gantt(flags: &HashMap<String, String>) -> Result<String, CliError> {
    let device = device_by_name(flag(flags, "device", "hikey970"))?;
    let backend = backend_by_name(flag(flags, "backend", "acl-gemm"))?;
    let mut layer = layer_from_flags(flags)?;
    if let Some(c) = flags.get("channels") {
        let c: usize = c
            .parse()
            .map_err(|_| err("--channels must be a positive integer"))?;
        layer = layer
            .with_c_out(c)
            .map_err(|e| err(format!("invalid channel count: {e}")))?;
    }
    let plan = backend.plan(&layer, &device);
    let trace = Engine::new(&device).trace_chain(plan.chain());
    Ok(format!(
        "{plan}\nutilization: {:.1}%\n{}",
        trace.utilization() * 100.0,
        trace.gantt(100)
    ))
}

fn cmd_sensitivity(flags: &HashMap<String, String>) -> Result<String, CliError> {
    let device = device_by_name(flag(flags, "device", "hikey970"))?;
    let backend = backend_by_name(flag(flags, "backend", "acl-gemm"))?;
    let network = network_by_name(flag(flags, "network", ""))?;
    let profiler = LayerProfiler::noiseless(&device);
    let accuracy = AccuracyModel::for_network(&network);
    let analysis = sensitivity::sensitivity_analysis(
        &profiler,
        &accuracy,
        backend.as_ref(),
        &network,
        &[0.75, 0.5, 0.25],
    );
    let mut out = String::new();
    for layer in &analysis {
        out.push_str(&layer.to_string());
        out.push_str(&format!(
            "  best speedup within 1% accuracy loss: {:.2}x
",
            layer.best_speedup_within_loss(0.01)
        ));
    }
    Ok(out)
}

fn cmd_lint(args: &[String]) -> Result<String, CliError> {
    let mut json = false;
    let mut deny_warnings = false;
    let mut root: Option<String> = None;
    let mut jobs: Option<usize> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--deny-warnings" => deny_warnings = true,
            "--root" => {
                let v = it.next().ok_or_else(|| err("flag --root needs a value"))?;
                root = Some(v.clone());
            }
            "--jobs" => {
                let v = it.next().ok_or_else(|| err("flag --jobs needs a value"))?;
                jobs = Some(
                    v.parse::<usize>()
                        .map_err(|_| err("--jobs must be a non-negative integer"))?,
                );
            }
            other => {
                return Err(err(format!(
                    "unexpected argument '{other}' (lint takes --json, --deny-warnings, --root PATH, --jobs N)"
                )))
            }
        }
    }
    sweep::set_sweep_jobs(sweep::resolve_jobs(jobs));
    let root = root.unwrap_or_else(|| env!("CARGO_MANIFEST_DIR").to_string());
    let report = pruneperf_analysis::run_full(std::path::Path::new(&root), sweep::sweep_jobs())
        .map_err(|e| err(format!("lint: cannot read sources under '{root}': {e}")))?;
    let rendered = if json {
        report.render_json()
    } else {
        report.render_human()
    };
    if report.errors() > 0 || (deny_warnings && report.warnings() > 0) {
        Err(CliError(rendered))
    } else {
        Ok(rendered)
    }
}

fn cmd_check(args: &[String]) -> Result<String, CliError> {
    let mut json = false;
    let mut deny_warnings = false;
    let mut root: Option<String> = None;
    let mut jobs: Option<usize> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--deny-warnings" => deny_warnings = true,
            "--root" => {
                let v = it.next().ok_or_else(|| err("flag --root needs a value"))?;
                root = Some(v.clone());
            }
            "--jobs" => {
                let v = it.next().ok_or_else(|| err("flag --jobs needs a value"))?;
                jobs = Some(
                    v.parse::<usize>()
                        .map_err(|_| err("--jobs must be a non-negative integer"))?,
                );
            }
            other => {
                return Err(err(format!(
                    "unexpected argument '{other}' (check takes --json, --deny-warnings, --root PATH, --jobs N)"
                )))
            }
        }
    }
    sweep::set_sweep_jobs(sweep::resolve_jobs(jobs));
    let root = root.unwrap_or_else(|| env!("CARGO_MANIFEST_DIR").to_string());
    let report = pruneperf_analysis::run_check(std::path::Path::new(&root), sweep::sweep_jobs())
        .map_err(|e| err(format!("check: cannot read sources under '{root}': {e}")))?;
    let rendered = if json {
        report.render_json()
    } else {
        report.render_human()
    };
    if report.errors() > 0 || (deny_warnings && report.warnings() > 0) {
        Err(CliError(rendered))
    } else {
        Ok(rendered)
    }
}

fn cmd_audit(args: &[String]) -> Result<String, CliError> {
    let mut json = false;
    let mut deny_warnings = false;
    let mut jobs: Option<usize> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--deny-warnings" => deny_warnings = true,
            "--jobs" => {
                let v = it.next().ok_or_else(|| err("flag --jobs needs a value"))?;
                jobs = Some(
                    v.parse::<usize>()
                        .map_err(|_| err("--jobs must be a non-negative integer"))?,
                );
            }
            other => {
                return Err(err(format!(
                    "unexpected argument '{other}' (audit takes --json, --deny-warnings, --jobs N)"
                )))
            }
        }
    }
    sweep::set_sweep_jobs(sweep::resolve_jobs(jobs));
    let report = pruneperf_analysis::run_audit(sweep::sweep_jobs());
    let rendered = if json {
        report.render_json()
    } else {
        report.render_human()
    };
    if report.errors() > 0 || (deny_warnings && report.warnings() > 0) {
        Err(CliError(rendered))
    } else {
        Ok(rendered)
    }
}

fn cmd_chaos(args: &[String]) -> Result<String, CliError> {
    let mut json = false;
    let mut trace_out: Option<String> = None;
    let mut opts = crate::chaos::ChaosOptions::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--trace-out" => {
                let v = it
                    .next()
                    .ok_or_else(|| err("flag --trace-out needs a value"))?;
                trace_out = Some(v.clone());
            }
            "--seed" => {
                let v = it.next().ok_or_else(|| err("flag --seed needs a value"))?;
                opts.seed = v
                    .parse::<u64>()
                    .map_err(|_| err("--seed must be a non-negative integer"))?;
            }
            "--faults" => {
                let v = it.next().ok_or_else(|| err("flag --faults needs a value"))?;
                let rate = v
                    .parse::<f64>()
                    .map_err(|_| err("--faults must be a rate in [0, 1]"))?;
                if !(0.0..=1.0).contains(&rate) {
                    return Err(err("--faults must be a rate in [0, 1]"));
                }
                opts.fault_rate = rate;
            }
            "--jobs" => {
                let v = it.next().ok_or_else(|| err("flag --jobs needs a value"))?;
                opts.jobs = v
                    .parse::<usize>()
                    .map_err(|_| err("--jobs must be a non-negative integer"))?
                    .max(1);
            }
            other => {
                return Err(err(format!(
                    "unexpected argument '{other}' (chaos takes --seed S, --faults RATE, --jobs N, --json, --trace-out PATH)"
                )))
            }
        }
    }
    let report = crate::chaos::run_chaos(&opts);
    if let Some(path) = &trace_out {
        try_write_file(path, &crate::chaos::trace_json(), "Chrome trace")?;
    }
    let rendered = if json {
        report.render_json()
    } else {
        report.render_human()
    };
    if report.deterministic() {
        Ok(rendered)
    } else {
        Err(CliError(rendered))
    }
}

fn cmd_bench(args: &[String]) -> Result<String, CliError> {
    let mut json = false;
    let mut no_wall = false;
    let mut out: Option<String> = None;
    let mut check: Option<String> = None;
    let mut jobs: Option<usize> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--no-wall" => no_wall = true,
            "--out" => {
                let v = it.next().ok_or_else(|| err("flag --out needs a value"))?;
                out = Some(v.clone());
            }
            "--check" => {
                let v = it.next().ok_or_else(|| err("flag --check needs a value"))?;
                check = Some(v.clone());
            }
            "--jobs" => {
                let v = it.next().ok_or_else(|| err("flag --jobs needs a value"))?;
                jobs = Some(
                    v.parse::<usize>()
                        .map_err(|_| err("--jobs must be a non-negative integer"))?,
                );
            }
            other => {
                return Err(err(format!(
                    "unexpected argument '{other}' (bench takes --json, --no-wall, --out PATH, --check BASELINE, --jobs N)"
                )))
            }
        }
    }
    sweep::set_sweep_jobs(sweep::resolve_jobs(jobs));
    let suite = pruneperf_bench::run_suite(!no_wall);
    if let Some(path) = &out {
        try_write_file(path, &suite.render_json(), "benchmark report")?;
    }
    let mut rendered = if json {
        suite.render_json()
    } else {
        suite.render_human()
    };
    if let Some(path) = &check {
        let baseline = std::fs::read_to_string(path)
            .map_err(|e| err(format!("cannot read baseline '{path}': {e}")))?;
        match suite.check_against(&baseline) {
            Ok(summary) => {
                if !json {
                    rendered.push_str(&format!("\n{summary}\n"));
                    // Wall-clock drift is worth a glance but never gates:
                    // it only renders when both sides carry wall stats.
                    if let Some(delta) = suite.wall_delta_against(&baseline) {
                        rendered.push_str(&format!("{delta}\n"));
                    }
                }
            }
            Err(problems) => {
                return Err(CliError(format!(
                    "bench check against '{path}' FAILED:\n  {}",
                    problems.join("\n  ")
                )));
            }
        }
    }
    Ok(rendered)
}

/// `pruneperf search`: the whole-network multi-objective pruning search.
///
/// The JSON rendering deliberately contains only schedule-free,
/// resume-invariant data (the front, the counters, the configuration) so
/// CI can compare runs byte-for-byte across `--jobs` counts and across a
/// persist/reload resume. Cache effectiveness (which *does* differ between
/// a cold and a resumed run) renders in the human output only.
fn cmd_search(args: &[String]) -> Result<String, CliError> {
    let mut json = false;
    let mut out: Option<String> = None;
    let mut persist: Option<String> = None;
    let mut cache_cap: usize = 0;
    let mut jobs: Option<usize> = None;
    let mut network_name = String::new();
    let mut device_name = "hikey970".to_string();
    let mut backend_name = "acl-gemm".to_string();
    let mut config = pruneperf_core::search::SearchConfig::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |key: &str| -> Result<String, CliError> {
            it.next()
                .cloned()
                .ok_or_else(|| err(format!("flag --{key} needs a value")))
        };
        match a.as_str() {
            "--json" => json = true,
            "--out" => out = Some(value("out")?),
            "--persist" => persist = Some(value("persist")?),
            "--network" => network_name = value("network")?,
            "--device" => device_name = value("device")?,
            "--backend" => backend_name = value("backend")?,
            "--algo" => {
                config.algo = match value("algo")?.as_str() {
                    "beam" => pruneperf_core::search::SearchAlgo::Beam,
                    "evolve" => pruneperf_core::search::SearchAlgo::Evolve,
                    other => return Err(err(format!("unknown algo '{other}' (beam | evolve)"))),
                };
            }
            "--beam-width" => {
                config.beam_width = value("beam-width")?
                    .parse()
                    .map_err(|_| err("--beam-width must be a positive integer"))?;
            }
            "--generations" => {
                config.generations = value("generations")?
                    .parse()
                    .map_err(|_| err("--generations must be a positive integer"))?;
            }
            "--seed" => {
                config.seed = value("seed")?
                    .parse()
                    .map_err(|_| err("--seed must be a non-negative integer"))?;
            }
            "--cache-cap" => {
                cache_cap = value("cache-cap")?
                    .parse()
                    .map_err(|_| err("--cache-cap must be a non-negative integer"))?;
            }
            "--jobs" => {
                jobs = Some(
                    value("jobs")?
                        .parse()
                        .map_err(|_| err("--jobs must be a non-negative integer"))?,
                );
            }
            other => {
                return Err(err(format!(
                    "unexpected argument '{other}' (search takes --network N, --backend B, \
                     --device D, --algo beam|evolve, --beam-width N, --generations N, --seed S, \
                     --json, --out PATH, --cache-cap N, --persist PATH, --jobs N)"
                )))
            }
        }
    }
    sweep::set_sweep_jobs(sweep::resolve_jobs(jobs));
    let device = device_by_name(&device_name)?;
    let backend = backend_by_name(&backend_name)?;
    let network = network_by_name(&network_name)?;

    // A local cache (never the process-wide one): its stats and persisted
    // bytes are then a pure function of this search.
    let cache = Arc::new(LatencyCache::new());
    if cache_cap > 0 {
        cache.set_max_entries_per_shard(cache_cap);
    }
    let mut restored = 0usize;
    if let Some(path) = &persist {
        match std::fs::read_to_string(path) {
            Ok(snapshot) => {
                restored = cache
                    .reload(&snapshot)
                    .map_err(|e| err(format!("cannot reload cache from '{path}': {e}")))?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(err(format!("cannot read cache file '{path}': {e}"))),
        }
    }

    let profiler = LayerProfiler::noiseless(&device).with_cache(Arc::clone(&cache));
    let accuracy = AccuracyModel::for_network(&network);
    let outcome =
        pruneperf_core::search::search(&profiler, &accuracy, backend.as_ref(), &network, &config);

    // Every plan on the front passes the whole-network verifier before it
    // reaches the user; a finding here is a search bug, not a warning.
    for plan in &outcome.plans {
        let diags = pruneperf_analysis::network_verify::audit_pruning_plan(plan, &network);
        if !diags.is_empty() {
            let rendered: Vec<String> = diags
                .iter()
                .map(|d| format!("{} {} {}", d.rule, d.location, d.message))
                .collect();
            return Err(err(format!(
                "search produced a plan that fails network verification:\n  {}",
                rendered.join("\n  ")
            )));
        }
    }

    if let Some(path) = &persist {
        try_write_file(path, &cache.persist(), "latency-cache snapshot")?;
    }

    let rendered_json = render_search_json(
        &network_name,
        &device_name,
        &backend_name,
        &config,
        &network,
        &outcome,
    );
    if let Some(path) = &out {
        try_write_file(path, &rendered_json, "search report")?;
    }
    if json {
        return Ok(rendered_json);
    }

    let mut out = format!(
        "search ({}) over {}: {} of {} joint configurations evaluated in {} rounds\n\
         front: {} plans ({} dominated, {} duplicates)\n",
        config.algo.name(),
        network,
        outcome.evaluated,
        outcome.total_configs,
        outcome.rounds,
        outcome.archived,
        outcome.dominated,
        outcome.duplicates,
    );
    out.push_str(&format!(
        "{:<10} {:>10} {:>10} {:>9}  kept\n",
        "plan", "ms", "mJ", "acc"
    ));
    for (i, plan) in outcome.plans.iter().enumerate() {
        let kept: Vec<String> = network
            .layers()
            .iter()
            .map(|l| {
                let k = plan.kept_for(l.label()).unwrap_or(l.c_out());
                format!("{k}/{}", l.c_out())
            })
            .collect();
        out.push_str(&format!(
            "{:<10} {:>10.3} {:>10.3} {:>8.2}%  {}\n",
            format!("#{i}"),
            plan.latency_ms(),
            plan.energy_mj(),
            plan.accuracy() * 100.0,
            kept.join(" ")
        ));
    }
    let stats = cache.stats();
    out.push_str(&format!("{stats}\n"));
    if let Some(path) = &persist {
        out.push_str(&format!(
            "cache: {restored} entries reloaded from '{path}', {} persisted back\n",
            stats.entries
        ));
    }
    Ok(out)
}

/// Renders the schedule-free search report (stable field order, floats via
/// shortest-roundtrip `Display` so string equality is bit equality).
fn render_search_json(
    network_name: &str,
    device_name: &str,
    backend_name: &str,
    config: &pruneperf_core::search::SearchConfig,
    network: &Network,
    outcome: &pruneperf_core::search::SearchOutcome,
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"version\": 1,\n");
    out.push_str("  \"command\": \"search\",\n");
    out.push_str(&format!("  \"network\": \"{network_name}\",\n"));
    out.push_str(&format!("  \"device\": \"{device_name}\",\n"));
    out.push_str(&format!("  \"backend\": \"{backend_name}\",\n"));
    out.push_str(&format!("  \"algo\": \"{}\",\n", config.algo.name()));
    out.push_str(&format!("  \"seed\": {},\n", config.seed));
    out.push_str(&format!("  \"beam_width\": {},\n", config.beam_width));
    out.push_str(&format!("  \"generations\": {},\n", config.generations));
    out.push_str(&format!(
        "  \"total_configs\": {},\n",
        outcome.total_configs
    ));
    out.push_str(&format!("  \"evaluated\": {},\n", outcome.evaluated));
    out.push_str(&format!("  \"archived\": {},\n", outcome.archived));
    out.push_str(&format!("  \"dominated\": {},\n", outcome.dominated));
    out.push_str(&format!("  \"duplicates\": {},\n", outcome.duplicates));
    out.push_str(&format!("  \"rounds\": {},\n", outcome.rounds));
    out.push_str("  \"front\": [\n");
    for (i, plan) in outcome.plans.iter().enumerate() {
        out.push_str("    {");
        out.push_str(&format!(
            "\"latency_ms\": {}, \"energy_mj\": {}, \"accuracy\": {}, \"kept\": {{",
            plan.latency_ms(),
            plan.energy_mj(),
            plan.accuracy()
        ));
        for (j, layer) in network.layers().iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            let k = plan.kept_for(layer.label()).unwrap_or(layer.c_out());
            out.push_str(&format!("\"{}\": {k}", layer.label()));
        }
        out.push_str("}}");
        if i + 1 < outcome.plans.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

fn cmd_report(flags: &HashMap<String, String>) -> Result<String, CliError> {
    let device = device_by_name(flag(flags, "device", "hikey970"))?;
    let backend = backend_by_name(flag(flags, "backend", "acl-gemm"))?;
    let network = network_by_name(flag(flags, "network", ""))?;
    let budget: f64 = flag(flags, "budget", "0.8")
        .parse()
        .map_err(|_| err("--budget must be a number in (0, 1]"))?;
    let profiler = LayerProfiler::noiseless(&device);
    let accuracy = AccuracyModel::for_network(&network);
    Ok(report::campaign_report(
        &profiler,
        &accuracy,
        backend.as_ref(),
        &network,
        report::ReportOptions {
            budget_fraction: budget,
            baseline_distance: 7,
        },
    ))
}

/// Parses an optional numeric flag, defaulting when absent.
fn numeric_flag<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    key: &str,
    default: T,
    expected: &str,
) -> Result<T, CliError> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| err(format!("--{key} must be {expected}"))),
    }
}

/// Renders the replay admission timeline as a Chrome trace: one lane
/// per simulated worker, complete events spanning virtual
/// service, zero-length events marking sheds at their arrival time.
fn serve_timeline_trace(report: &pruneperf_serve::replay::ReplayReport, workers: usize) -> String {
    let mut events = vec![ChromeEvent::process_name(
        0,
        "pruneperf serve (virtual time)",
    )];
    for w in 0..workers.max(1) as u64 {
        events.push(ChromeEvent::thread_name(0, w, &format!("worker {w}")));
    }
    for &(id, arrival_ms, outcome) in &report.timeline {
        let event = if outcome.admitted {
            ChromeEvent::complete(
                &format!("req {id}"),
                "serve",
                outcome.start_ms * 1000.0,
                (outcome.finish_ms - outcome.start_ms) * 1000.0,
                0,
                outcome.worker as u64,
            )
            .arg_num("queue_depth", outcome.depth)
            .arg_num("latency_ms", outcome.latency_ms(arrival_ms))
        } else {
            ChromeEvent::complete(
                &format!("shed {id}"),
                "serve",
                arrival_ms * 1000.0,
                0.0,
                0,
                outcome.worker as u64,
            )
            .arg_num("queue_depth", outcome.depth)
            .arg_str("outcome", "shed")
        };
        events.push(event);
    }
    render_trace(&events)
}

fn cmd_serve(flags: &HashMap<String, String>) -> Result<String, CliError> {
    let workers = numeric_flag(flags, "workers", 4usize, "a positive integer")?;
    let queue = numeric_flag(flags, "queue", 4usize, "a positive integer")?;
    let service_ms = numeric_flag(flags, "service-ms", 5.0f64, "a number of milliseconds")?;
    let cache_cap = numeric_flag(flags, "cache-cap", 4096usize, "a non-negative integer")?;
    if !(service_ms.is_finite() && service_ms > 0.0) {
        return Err(err("--service-ms must be a positive number"));
    }

    if let Some(path) = flags.get("replay") {
        let trace = std::fs::read_to_string(path)
            .map_err(|e| err(format!("cannot read trace '{path}': {e}")))?;
        let service = PlanService::new(cache_cap);
        let opts = ReplayOptions {
            workers,
            queue_capacity: queue,
            service_ms,
            cache_cap,
        };
        let report = replay_trace_with(&trace, &opts, &service);
        if let Some(p) = flags.get("stats") {
            try_write_file(p, &service.stats_json(), "stats snapshot")?;
        }
        if let Some(p) = flags.get("trace-out") {
            try_write_file(p, &serve_timeline_trace(&report, workers), "Chrome trace")?;
        }
        return Ok(report.output);
    }

    let addr = flag(flags, "addr", "127.0.0.1:7878");
    let max_requests = match flags.get("max-requests") {
        None => None,
        Some(v) => Some(
            v.parse::<usize>()
                .map_err(|_| err("--max-requests must be a non-negative integer"))?,
        ),
    };
    let server = Server::bind(ServerOptions {
        addr: addr.to_string(),
        workers,
        queue_capacity: queue,
        cache_cap,
        max_requests,
    })
    .map_err(|e| err(format!("cannot bind '{addr}': {e}")))?;
    let bound = server
        .local_addr()
        .map_err(|e| err(format!("cannot query bound address: {e}")))?;
    let summary = server
        .run()
        .map_err(|e| err(format!("serve failed: {e}")))?;
    if let Some(p) = flags.get("stats") {
        try_write_file(p, &server.service().stats_json(), "stats snapshot")?;
    }
    Ok(format!(
        "served {} connection(s) on {bound}: shed={} refused={}\n",
        summary.accepted, summary.shed, summary.refused
    ))
}

fn cmd_loadgen(flags: &HashMap<String, String>) -> Result<String, CliError> {
    let defaults = LoadgenOptions::default();
    let opts = LoadgenOptions {
        seed: numeric_flag(flags, "seed", defaults.seed, "a non-negative integer")?,
        requests: numeric_flag(
            flags,
            "requests",
            defaults.requests,
            "a non-negative integer",
        )?,
        workers: numeric_flag(flags, "workers", defaults.workers, "a positive integer")?,
        queue_capacity: numeric_flag(
            flags,
            "queue",
            defaults.queue_capacity,
            "a positive integer",
        )?,
        service_ms: numeric_flag(
            flags,
            "service-ms",
            defaults.service_ms,
            "a number of milliseconds",
        )?,
        cache_cap: numeric_flag(
            flags,
            "cache-cap",
            defaults.cache_cap,
            "a non-negative integer",
        )?,
    };
    if !(opts.service_ms.is_finite() && opts.service_ms > 0.0) {
        return Err(err("--service-ms must be a positive number"));
    }
    Ok(run_loadgen(&opts))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(args: &[&str]) -> Result<String, CliError> {
        let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        run_cli(&v)
    }

    #[test]
    fn help_and_unknown_commands() {
        assert!(run(&["help"]).unwrap().contains("usage:"));
        assert!(run(&["bogus"]).unwrap_err().0.contains("unknown command"));
        assert!(run(&[]).unwrap_err().0.contains("usage:"));
    }

    #[test]
    fn devices_lists_all_four() {
        let out = run(&["devices"]).unwrap();
        for name in ["hikey970", "odroidxu4", "tx2", "nano"] {
            assert!(out.contains(name), "{out}");
        }
    }

    #[test]
    fn networks_lists_catalogs() {
        let out = run(&["networks"]).unwrap();
        assert!(out.contains("ResNet-50"));
        assert!(out.contains("MobileNetV1"));
        assert!(out.contains("ResNet.L16"));
    }

    #[test]
    fn profile_text_and_csv() {
        let out = run(&["profile", "--network", "alexnet", "--layer", "AlexNet.L6"]).unwrap();
        assert!(out.contains("optimal pruning candidates"), "{out}");
        let csv = run(&[
            "profile",
            "--network",
            "alexnet",
            "--layer",
            "AlexNet.L6",
            "--format",
            "csv",
        ])
        .unwrap();
        assert!(csv.starts_with("channels,median_ms"), "{csv}");
    }

    #[test]
    fn prune_reports_a_plan() {
        let out = run(&[
            "prune",
            "--network",
            "alexnet",
            "--budget",
            "0.8",
            "--device",
            "tx2",
            "--backend",
            "cudnn",
        ])
        .unwrap();
        assert!(out.contains("performance-aware plan"), "{out}");
        assert!(out.contains("energy:"), "{out}");
    }

    #[test]
    fn run_reports_totals_and_thermal() {
        let out = run(&["run", "--network", "alexnet"]).unwrap();
        assert!(out.contains("total:"), "{out}");
        assert!(out.contains("sustained"), "{out}");
    }

    #[test]
    fn gantt_renders() {
        let out = run(&[
            "gantt",
            "--network",
            "resnet50",
            "--layer",
            "ResNet.L16",
            "--channels",
            "92",
        ])
        .unwrap();
        assert!(out.contains("utilization"), "{out}");
        assert!(out.contains("gemm_mm"), "{out}");
    }

    #[test]
    fn sensitivity_reports_all_layers() {
        let out = run(&[
            "sensitivity",
            "--network",
            "alexnet",
            "--device",
            "tx2",
            "--backend",
            "cudnn",
        ])
        .unwrap();
        for label in ["AlexNet.L0", "AlexNet.L10"] {
            assert!(out.contains(label), "{out}");
        }
        assert!(
            out.contains("best speedup within 1% accuracy loss"),
            "{out}"
        );
    }

    #[test]
    fn report_renders_markdown() {
        let out = run(&[
            "report",
            "--network",
            "alexnet",
            "--device",
            "tx2",
            "--backend",
            "cudnn",
        ])
        .unwrap();
        assert!(out.contains("# Pruning campaign"), "{out}");
        assert!(out.contains("## Verdict"), "{out}");
    }

    #[test]
    fn jobs_flag_does_not_change_output() {
        let base = ["profile", "--network", "alexnet", "--layer", "AlexNet.L6"];
        let sequential = run(&{
            let mut a = base.to_vec();
            a.extend(["--jobs", "1"]);
            a
        })
        .unwrap();
        let parallel = run(&{
            let mut a = base.to_vec();
            a.extend(["--jobs", "4"]);
            a
        })
        .unwrap();
        assert_eq!(sequential, parallel);
        assert!(run(&["profile", "--jobs", "many"])
            .unwrap_err()
            .0
            .contains("--jobs"));
    }

    #[test]
    fn audit_flag_errors_are_user_facing() {
        assert!(run(&["audit", "--root", "."])
            .unwrap_err()
            .0
            .contains("unexpected argument"));
        assert!(run(&["audit", "--jobs", "many"])
            .unwrap_err()
            .0
            .contains("--jobs"));
        assert!(run(&["audit", "--jobs"]).unwrap_err().0.contains("--jobs"));
    }

    #[test]
    fn chaos_drill_runs_and_passes() {
        let out = run(&["chaos", "--seed", "2", "--faults", "0.25"]).unwrap();
        assert!(out.contains("chaos drill: seed 2"), "{out}");
        assert!(out.contains("worker-count determinism: PASS"), "{out}");
        for name in [
            "transient-retry",
            "permanent-degrade",
            "worker-panic",
            "poison-recovery",
        ] {
            assert!(out.contains(name), "{out}");
        }
    }

    #[test]
    fn chaos_output_is_byte_identical_across_jobs() {
        let one = run(&["chaos", "--seed", "7", "--jobs", "1"]).unwrap();
        let eight = run(&["chaos", "--seed", "7", "--jobs", "8"]).unwrap();
        assert_eq!(one, eight);
    }

    #[test]
    fn chaos_json_mode_and_flag_errors() {
        let json = run(&["chaos", "--seed", "1", "--json"]).unwrap();
        assert!(json.contains("\"deterministic\": true"), "{json}");
        assert!(json.contains("\"scenarios\": ["), "{json}");
        assert!(run(&["chaos", "--faults", "1.5"])
            .unwrap_err()
            .0
            .contains("--faults"));
        assert!(run(&["chaos", "--seed"]).unwrap_err().0.contains("--seed"));
        assert!(run(&["chaos", "--network", "alexnet"])
            .unwrap_err()
            .0
            .contains("unexpected argument"));
    }

    /// A collision-free scratch path under the system temp directory.
    fn scratch(name: &str) -> String {
        let path = std::env::temp_dir().join(format!("pruneperf-cli-test-{name}"));
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn bench_json_is_deterministic_across_jobs_without_wall() {
        let one = run(&["bench", "--json", "--no-wall", "--jobs", "1"]).unwrap();
        let eight = run(&["bench", "--json", "--no-wall", "--jobs", "8"]).unwrap();
        assert_eq!(one, eight);
        assert!(one.contains("\"suite\": \"pruneperf bench\""), "{one}");
        for name in [
            "cache_hit",
            "cold_sweep",
            "staircase_detect",
            "gemm_split_plan",
            "resnet50_full",
        ] {
            assert!(one.contains(name), "{one}");
        }
        assert!(!one.contains("median_ns"), "{one}");
    }

    #[test]
    fn bench_out_and_check_round_trip() {
        let path = scratch("bench-baseline.json");
        let out = run(&["bench", "--no-wall", "--out", &path]).unwrap();
        assert!(out.contains("[cache_hit]"), "{out}");
        let checked = run(&["bench", "--no-wall", "--check", &path]).unwrap();
        assert!(checked.contains("match the baseline"), "{checked}");

        let baseline = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, baseline.replace("\"plans\": ", "\"plans\": 9")).unwrap();
        let failure = run(&["bench", "--no-wall", "--check", &path]).unwrap_err();
        assert!(failure.0.contains("FAILED"), "{failure}");
        assert!(failure.0.contains("gemm_split_plan.plans"), "{failure}");
        std::fs::remove_file(&path).ok();

        assert!(run(&["bench", "--check", "/nonexistent/baseline.json"])
            .unwrap_err()
            .0
            .contains("cannot read baseline"));
        assert!(run(&["bench", "--network", "alexnet"])
            .unwrap_err()
            .0
            .contains("unexpected argument"));
        assert!(run(&["bench", "--out"]).unwrap_err().0.contains("--out"));
    }

    #[test]
    fn run_trace_out_and_stats_write_artifacts() {
        let trace = scratch("run-trace.json");
        let stats = scratch("run-stats.json");
        let out = run(&[
            "run",
            "--network",
            "alexnet",
            "--trace-out",
            &trace,
            "--stats",
            &stats,
        ])
        .unwrap();
        // Side-channel files never change the primary report.
        assert_eq!(out, run(&["run", "--network", "alexnet"]).unwrap());
        let trace_json = std::fs::read_to_string(&trace).unwrap();
        assert!(trace_json.contains("\"traceEvents\""), "{trace_json}");
        assert!(trace_json.contains("AlexNet.L0"), "{trace_json}");
        let stats_json = std::fs::read_to_string(&stats).unwrap();
        assert!(stats_json.contains("\"cache\""), "{stats_json}");
        assert!(stats_json.contains("\"shards\""), "{stats_json}");
        std::fs::remove_file(&trace).ok();
        std::fs::remove_file(&stats).ok();
    }

    #[test]
    fn profile_trace_out_and_stats_write_artifacts() {
        let trace = scratch("profile-trace.json");
        let stats = scratch("profile-stats.json");
        run(&[
            "profile",
            "--network",
            "alexnet",
            "--layer",
            "AlexNet.L6",
            "--trace-out",
            &trace,
            "--stats",
            &stats,
        ])
        .unwrap();
        let trace_json = std::fs::read_to_string(&trace).unwrap();
        assert!(trace_json.contains("\"traceEvents\""), "{trace_json}");
        assert!(trace_json.contains("configurations"), "{trace_json}");
        let stats_json = std::fs::read_to_string(&stats).unwrap();
        assert!(stats_json.contains("\"sweep\""), "{stats_json}");
        std::fs::remove_file(&trace).ok();
        std::fs::remove_file(&stats).ok();
        assert!(run(&[
            "profile",
            "--network",
            "alexnet",
            "--layer",
            "AlexNet.L6",
            "--trace-out",
            "/nonexistent/dir/trace.json",
        ])
        .unwrap_err()
        .0
        .contains("cannot write Chrome trace"));
    }

    #[test]
    fn chaos_trace_out_is_byte_identical_across_jobs() {
        let a = scratch("chaos-trace-1.json");
        let b = scratch("chaos-trace-8.json");
        run(&["chaos", "--seed", "3", "--jobs", "1", "--trace-out", &a]).unwrap();
        run(&["chaos", "--seed", "3", "--jobs", "8", "--trace-out", &b]).unwrap();
        let one = std::fs::read_to_string(&a).unwrap();
        let eight = std::fs::read_to_string(&b).unwrap();
        assert_eq!(one, eight);
        assert!(one.contains("\"traceEvents\""), "{one}");
        std::fs::remove_file(&a).ok();
        std::fs::remove_file(&b).ok();
        assert!(run(&["chaos", "--trace-out"])
            .unwrap_err()
            .0
            .contains("--trace-out"));
    }

    #[test]
    fn flag_errors_are_user_facing() {
        assert!(run(&["profile", "--network", "resnet50"])
            .unwrap_err()
            .0
            .contains("--layer is required"));
        assert!(run(&["prune", "--network", "nope"])
            .unwrap_err()
            .0
            .contains("unknown network"));
        assert!(run(&["profile", "positional"])
            .unwrap_err()
            .0
            .contains("unexpected argument"));
        assert!(run(&["profile", "--layer"])
            .unwrap_err()
            .0
            .contains("needs a value"));
        assert!(run(&["prune", "--network", "alexnet", "--budget", "2.0"])
            .unwrap_err()
            .0
            .contains("--budget"));
    }

    #[test]
    fn duplicate_flags_are_rejected_not_last_wins() {
        let e = run(&[
            "profile",
            "--device",
            "tx2",
            "--device",
            "nano",
            "--network",
            "alexnet",
            "--layer",
            "AlexNet.L6",
        ])
        .unwrap_err();
        assert!(e.0.contains("duplicate flag --device"), "{e}");
        let e = run(&[
            "prune",
            "--network",
            "alexnet",
            "--budget",
            "0.8",
            "--budget",
            "0.5",
        ])
        .unwrap_err();
        assert!(e.0.contains("duplicate flag --budget"), "{e}");
    }

    #[test]
    fn serve_replay_answers_a_trace_on_stdout() {
        let trace_path = scratch("serve-replay.jsonl");
        std::fs::write(
            &trace_path,
            "{\"arrival_ms\":0,\"network\":\"alexnet\",\"device\":\"tx2\",\"budget\":0.8}\n\
             {\"arrival_ms\":1,\"network\":\"alexnet\",\"device\":\"tx2\",\"budget\":0.8}\n",
        )
        .unwrap();
        let stats_path = scratch("serve-replay-stats.json");
        let trace_out = scratch("serve-replay-trace.json");
        let out = run(&[
            "serve",
            "--replay",
            &trace_path,
            "--workers",
            "2",
            "--queue",
            "4",
            "--stats",
            &stats_path,
            "--trace-out",
            &trace_out,
        ])
        .unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"status\":\"ok\""), "{out}");
        assert!(lines[1].contains("\"deduped\":true"), "{out}");
        let stats = std::fs::read_to_string(&stats_path).unwrap();
        assert!(stats.contains("\"cache\""), "{stats}");
        let timeline = std::fs::read_to_string(&trace_out).unwrap();
        assert!(timeline.contains("worker 0"), "{timeline}");
        assert!(run(&["serve", "--replay", "/nonexistent/trace.jsonl"])
            .unwrap_err()
            .0
            .contains("cannot read trace"));
    }

    #[test]
    fn serve_replay_is_jobs_invariant_from_the_cli() {
        let trace_path = scratch("serve-replay-jobs.jsonl");
        std::fs::write(
            &trace_path,
            "{\"arrival_ms\":0,\"network\":\"alexnet\",\"device\":\"tx2\",\"budget\":0.8}\n\
             {\"arrival_ms\":0,\"network\":\"mobilenetv1\",\"device\":\"nano\",\"budget\":0.6}\n\
             {\"arrival_ms\":0,\"network\":\"alexnet\",\"device\":\"tx2\",\"budget\":0.7,\
              \"fault_seed\":4,\"fault_rate\":1.0}\n",
        )
        .unwrap();
        let one = run(&["serve", "--replay", &trace_path, "--jobs", "1"]).unwrap();
        let eight = run(&["serve", "--replay", &trace_path, "--jobs", "8"]).unwrap();
        assert_eq!(one, eight);
        assert!(one.contains("\"degraded\":true"), "{one}");
    }

    #[test]
    fn loadgen_reports_the_drill() {
        let out = run(&["loadgen", "--requests", "16", "--seed", "7"]).unwrap();
        assert!(out.starts_with("loadgen seed=7 requests=16"), "{out}");
        assert!(out.contains("virtual latency ms:"), "{out}");
        assert!(out.contains("cache entries:"), "{out}");
        assert!(run(&["loadgen", "--requests", "x"])
            .unwrap_err()
            .0
            .contains("--requests"));
    }
}

//! `pruneperf` — performance-aware CNN channel pruning for embedded GPUs.
//!
//! A Rust reproduction of Radu et al., *“Performance Aware Convolutional
//! Neural Network Channel Pruning for Embedded GPUs”* (IEEE IISWC 2019).
//!
//! This facade crate re-exports the workspace members so applications can
//! depend on a single crate:
//!
//! * [`tensor`] — NHWC tensors and reference convolution algorithms.
//! * [`models`] — ResNet-50 / VGG-16 / AlexNet layer catalogs with the
//!   paper's layer labels and channel-pruning transforms.
//! * [`gpusim`] — deterministic cycle-approximate embedded-GPU simulator
//!   (Mali G72/T628-like and Jetson TX2/Nano-like devices).
//! * [`backends`] — behavioural models of the ACL Direct, ACL GEMM, cuDNN
//!   and TVM convolution planners.
//! * [`profiler`] — OpenCL/CUDA-style kernel interception and median-of-N
//!   measurement.
//! * [`core`] — the paper's contribution: staircase analysis,
//!   speedup/slowdown heatmaps and the performance-aware pruning loop.
//!
//! # Quickstart
//!
//! ```
//! use pruneperf::prelude::*;
//!
//! // Profile ResNet-50 layer 16 with ACL GEMM on the HiKey 970 and pick
//! // channel counts on the right edge of each staircase step.
//! let device = Device::mali_g72_hikey970();
//! let layer = resnet50().layer("ResNet.L16").expect("catalog has L16").clone();
//! let backend = AclGemm::new();
//! let profiler = LayerProfiler::new(&device);
//! let curve = profiler.latency_curve(&backend, &layer, 1..=layer.c_out());
//! let staircase = Staircase::detect(&curve);
//! assert!(!staircase.optimal_points().is_empty());
//! ```

#![forbid(unsafe_code)]

pub mod chaos;
pub mod cli;

pub use pruneperf_backends as backends;
pub use pruneperf_bench as bench;
pub use pruneperf_core as core;
pub use pruneperf_gpusim as gpusim;
pub use pruneperf_models as models;
pub use pruneperf_profiler as profiler;
pub use pruneperf_serve as serve;
pub use pruneperf_tensor as tensor;

/// One-stop imports for the common workflow.
pub mod prelude {
    pub use pruneperf_backends::{AclDirect, AclDirectTuned, AclGemm, ConvBackend, Cudnn, Tvm};
    pub use pruneperf_core::{
        accuracy::AccuracyModel, analysis, LatencyCurve, PerfAwarePruner, Staircase,
        UninstructedPruner,
    };
    pub use pruneperf_gpusim::Device;
    pub use pruneperf_models::{alexnet, mobilenet_v1, resnet50, vgg16, ConvLayerSpec, Network};
    pub use pruneperf_profiler::LayerProfiler;
    pub use pruneperf_tensor::{Tensor, TensorError};
}

//! The `pruneperf chaos` drill: runs the deterministic fault-injection
//! harness end-to-end and proves the engine's recovery behaviour.
//!
//! Four scenarios, all driven by one seed through
//! [`pruneperf_profiler::faults::FaultPlan`]:
//!
//! 1. **transient-retry** — flaky cost queries recovered by bounded
//!    retry with accounted (virtual, never slept) backoff;
//! 2. **permanent-degrade** — unmeasurable configurations become
//!    explicit gaps in a partial curve that staircase analysis still
//!    digests;
//! 3. **worker-panic** — sweep workers panic at scheduled items and are
//!    contained with their item index while every survivor completes;
//! 4. **poison-recovery** — every latency-cache shard lock is poisoned
//!    and subsequent queries recover bitwise-identical values.
//!
//! The harness then re-runs every scenario at a different worker count
//! and asserts the rendered output is **byte-identical** — the
//! fault schedule keys on work identity, not call order, so parallelism
//! must be unobservable. `scripts/ci.sh` repeats that check across
//! processes.

use std::sync::Arc;

use pruneperf_backends::{AclGemm, ConvBackend};
use pruneperf_core::Staircase;
use pruneperf_gpusim::Device;
use pruneperf_models::{resnet50, ConvLayerSpec};
use pruneperf_profiler::faults::{FaultPlan, FaultyBackend, RetryPolicy};
use pruneperf_profiler::{sweep, LatencyCache, LayerProfiler};

/// Channel range the sweep scenarios profile (ResNet-50 L16).
const SWEEP_CHANNELS: std::ops::RangeInclusive<usize> = 60..=128;
/// Item count for the worker-panic scenario.
const PANIC_ITEMS: usize = 48;

/// Tuning knobs for one chaos run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosOptions {
    /// Seed driving every fault schedule.
    pub seed: u64,
    /// Base fault rate in `[0, 1]`, applied per fault family.
    pub fault_rate: f64,
    /// Worker count for the primary run (the cross-check always runs
    /// the other of {1, 8} and compares).
    pub jobs: usize,
}

impl Default for ChaosOptions {
    fn default() -> Self {
        ChaosOptions {
            seed: 1,
            fault_rate: 0.2,
            jobs: 1,
        }
    }
}

/// One scenario's rendered outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosScenario {
    /// Scenario name (stable identifier).
    pub name: &'static str,
    /// Human-readable result lines, deterministic for a given seed.
    pub lines: Vec<String>,
}

/// Everything one `pruneperf chaos` invocation observed.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosReport {
    seed: u64,
    fault_rate: f64,
    scenarios: Vec<ChaosScenario>,
    deterministic: bool,
}

impl ChaosReport {
    /// The scenarios in execution order.
    pub fn scenarios(&self) -> &[ChaosScenario] {
        &self.scenarios
    }

    /// `true` when the run at the other worker count rendered
    /// byte-identical output.
    pub fn deterministic(&self) -> bool {
        self.deterministic
    }

    /// Human-readable report. Deliberately never mentions the worker
    /// count: the output of `--jobs 1` and `--jobs 8` must compare
    /// byte-equal from the outside.
    pub fn render_human(&self) -> String {
        let mut out = format!(
            "chaos drill: seed {}, fault rate {}\n",
            self.seed, self.fault_rate
        );
        for s in &self.scenarios {
            out.push_str(&format!("\n[{}]\n", s.name));
            for line in &s.lines {
                out.push_str("  ");
                out.push_str(line);
                out.push('\n');
            }
        }
        out.push_str(&format!(
            "\nworker-count determinism: {}\n",
            if self.deterministic {
                "PASS (byte-identical across worker counts)"
            } else {
                "FAIL (output depends on the worker count)"
            }
        ));
        out
    }

    /// Stable-field-order JSON rendering (same idiom as the analysis
    /// reports — no serializer dependency in the binary).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"version\": 1,\n");
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!("  \"fault_rate\": {},\n", self.fault_rate));
        out.push_str(&format!("  \"deterministic\": {},\n", self.deterministic));
        out.push_str("  \"scenarios\": [\n");
        for (i, s) in self.scenarios.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"lines\": [",
                json_escape(s.name)
            ));
            for (j, line) in s.lines.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("\"{}\"", json_escape(line)));
            }
            out.push_str("]}");
            if i + 1 < self.scenarios.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Silences the process panic hook for the guard's lifetime; the
/// contained-panic and lock-poisoning scenarios unwind on purpose, and
/// the default hook would spray backtraces over the report.
type PanicHook = Box<dyn Fn(&std::panic::PanicHookInfo<'_>) + Sync + Send + 'static>;

struct HookGuard {
    prev: Option<PanicHook>,
}

impl HookGuard {
    fn install() -> Self {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        HookGuard { prev: Some(prev) }
    }
}

impl Drop for HookGuard {
    fn drop(&mut self) {
        if let Some(prev) = self.prev.take() {
            std::panic::set_hook(prev);
        }
    }
}

fn layer() -> ConvLayerSpec {
    resnet50()
        .layer("ResNet.L16")
        // lint: allow(unwrap) — the static catalog always carries L16
        .expect("catalog has L16")
        .clone()
}

/// Scenario 1: transient faults recovered by bounded retry.
fn transient_retry(seed: u64, rate: f64) -> ChaosScenario {
    let device = Device::mali_g72_hikey970();
    let plan = FaultPlan::new(seed).with_transient_rate(rate);
    let backend = FaultyBackend::new(AclGemm::new(), plan);
    let profiler = LayerProfiler::noiseless(&device)
        .with_cache(Arc::new(LatencyCache::new()))
        .with_retry_policy(RetryPolicy::bounded());
    let partial = profiler.latency_curve_partial(&backend, &layer(), SWEEP_CHANNELS);
    let total = partial.measured() + partial.gaps().len();
    let mut lines = vec![
        format!(
            "measured {}/{} configurations after transient-fault retries",
            partial.measured(),
            total
        ),
        format!("injected: {}", backend.stats()),
    ];
    for gap in partial.gaps() {
        lines.push(format!(
            "gave up at {} channels after {} attempt(s)",
            gap.channels, gap.attempts
        ));
    }
    ChaosScenario {
        name: "transient-retry",
        lines,
    }
}

/// Scenario 2: permanent faults degrade to a gap-marked partial curve
/// that staircase analysis still accepts.
fn permanent_degrade(seed: u64, rate: f64) -> ChaosScenario {
    let device = Device::mali_g72_hikey970();
    let plan = FaultPlan::new(seed).with_permanent_rate(rate);
    let backend = FaultyBackend::new(AclGemm::new(), plan);
    let profiler = LayerProfiler::noiseless(&device).with_cache(Arc::new(LatencyCache::new()));
    let partial = profiler.latency_curve_partial(&backend, &layer(), SWEEP_CHANNELS);
    let mut lines = vec![format!(
        "{} gap(s), {:.1}% coverage",
        partial.gaps().len(),
        partial.coverage() * 100.0
    )];
    match partial.curve() {
        Some(curve) => {
            let staircase = Staircase::detect(curve);
            lines.push(format!(
                "staircase over survivors: {} step(s), {} optimal point(s)",
                staircase.steps().len(),
                staircase.optimal_points().len()
            ));
        }
        None => lines.push("no surviving points — staircase skipped".to_string()),
    }
    let gapped: Vec<String> = partial
        .gaps()
        .iter()
        .map(|g| g.channels.to_string())
        .collect();
    if !gapped.is_empty() {
        lines.push(format!("unmeasurable channels: {}", gapped.join(", ")));
    }
    ChaosScenario {
        name: "permanent-degrade",
        lines,
    }
}

/// Scenario 3: scheduled worker panics are contained with their item
/// index while every other item completes.
fn worker_panic(seed: u64, rate: f64) -> ChaosScenario {
    let device = Device::mali_g72_hikey970();
    let plan = FaultPlan::new(seed).with_panic_rate(rate);
    let base = layer();
    let clean = AclGemm::new();
    let items: Vec<usize> = (0..PANIC_ITEMS).collect();
    // lint: allow(hot-root) — chaos scenario driver: CI-time fault sweep, not a serving path
    let (slots, panics) = sweep::contained_parallel_map(&items, sweep::sweep_jobs(), |&i| {
        assert!(!plan.panics_at(i), "injected worker panic at item {i}");
        let pruned = base
            .with_c_out(60 + i)
            // lint: allow(unwrap) — 60..108 is within L16's 1..=128 range
            .expect("60..108 is within the layer's range");
        clean.latency_ms(&pruned, &device)
    });
    let survivors = slots.iter().filter(|s| s.is_some()).count();
    let mut lines = vec![format!(
        "{} of {} items panicked; {} survivor(s) completed in order",
        panics.len(),
        PANIC_ITEMS,
        survivors
    )];
    for p in &panics {
        lines.push(format!("contained: {p}"));
    }
    let ordered = slots
        .iter()
        .enumerate()
        .all(|(i, s)| s.is_some() != panics.iter().any(|p| p.index == i));
    lines.push(format!(
        "slot/panic bookkeeping consistent: {}",
        if ordered { "yes" } else { "NO" }
    ));
    ChaosScenario {
        name: "worker-panic",
        lines,
    }
}

/// Scenario 4: poisoned cache shards recover with bitwise-identical
/// values.
fn poison_recovery(seed: u64) -> ChaosScenario {
    let device = Device::mali_g72_hikey970();
    let cache = LatencyCache::new();
    let backend = AclGemm::new();
    let base = layer();
    // Seed shifts which configurations are warmed, so different chaos
    // seeds exercise different shards.
    let start = 60 + (seed % 8) as usize;
    let configs: Vec<ConvLayerSpec> = (start..start + 16)
        // lint: allow(unwrap) — 60..84 is within L16's 1..=128 range
        .map(|c| base.with_c_out(c).expect("within range"))
        .collect();
    let before: Vec<(f64, f64)> = configs
        .iter()
        .map(|l| cache.cost(&backend, l, &device))
        .collect();
    cache.poison_all_shards();
    let after: Vec<(f64, f64)> = configs
        .iter()
        .map(|l| cache.cost(&backend, l, &device))
        .collect();
    let identical = before
        .iter()
        .zip(&after)
        .all(|(a, b)| a.0.to_bits() == b.0.to_bits() && a.1.to_bits() == b.1.to_bits());
    let fresh = cache.cost(
        &backend,
        // lint: allow(unwrap) — 40 is within L16's 1..=128 range
        &base.with_c_out(40).expect("within range"),
        &device,
    );
    ChaosScenario {
        name: "poison-recovery",
        lines: vec![
            format!(
                "poisoned every shard after warming {} entries",
                before.len()
            ),
            format!(
                "re-read {} entries bitwise-identical: {}",
                after.len(),
                if identical { "yes" } else { "NO" }
            ),
            format!(
                "fresh insert after poisoning: {}",
                if fresh.0 > 0.0 { "ok" } else { "FAILED" }
            ),
        ],
    }
}

/// Chrome-trace JSON of the drill's sweep workload in virtual time: the
/// per-configuration and per-kernel spans of the ResNet-50 L16 channel
/// sweep every fault scenario drives (`pruneperf chaos --trace-out`).
///
/// Built from the deterministic simulator timelines, so the rendering is
/// byte-identical at any seed, fault rate or worker count — CI compares
/// it across `--jobs 1` and `--jobs 8` with `cmp`.
pub fn trace_json() -> String {
    let device = Device::mali_g72_hikey970();
    let profiler = LayerProfiler::noiseless(&device);
    pruneperf_gpusim::render_trace(&profiler.sweep_events(
        &AclGemm::new(),
        &layer(),
        SWEEP_CHANNELS,
    ))
}

fn run_scenarios(opts: &ChaosOptions) -> Vec<ChaosScenario> {
    vec![
        transient_retry(opts.seed, opts.fault_rate),
        permanent_degrade(opts.seed, opts.fault_rate),
        worker_panic(opts.seed, opts.fault_rate),
        poison_recovery(opts.seed),
    ]
}

/// Runs the chaos drill.
///
/// Scenarios execute at `opts.jobs` sweep workers, then again at the
/// other of {1, 8}; the report's `deterministic` flag records whether
/// both renderings were byte-identical. The process-wide sweep worker
/// count is restored afterwards.
pub fn run_chaos(opts: &ChaosOptions) -> ChaosReport {
    let _hook = HookGuard::install();
    let restore = sweep::sweep_jobs();
    let primary_jobs = opts.jobs.max(1);
    let cross_jobs = if primary_jobs == 1 { 8 } else { 1 };

    sweep::set_sweep_jobs(primary_jobs);
    let primary = run_scenarios(opts);
    sweep::set_sweep_jobs(cross_jobs);
    let cross = run_scenarios(opts);
    sweep::set_sweep_jobs(restore);

    ChaosReport {
        seed: opts.seed,
        fault_rate: opts.fault_rate,
        deterministic: primary == cross,
        scenarios: primary,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_run_is_deterministic_and_reports_all_scenarios() {
        let opts = ChaosOptions {
            seed: 3,
            fault_rate: 0.25,
            jobs: 1,
        };
        let report = run_chaos(&opts);
        assert!(report.deterministic(), "{}", report.render_human());
        let names: Vec<&str> = report.scenarios().iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            [
                "transient-retry",
                "permanent-degrade",
                "worker-panic",
                "poison-recovery"
            ]
        );
    }

    #[test]
    fn jobs_one_and_eight_render_identically() {
        let mk = |jobs| ChaosOptions {
            seed: 5,
            fault_rate: 0.3,
            jobs,
        };
        let one = run_chaos(&mk(1));
        let eight = run_chaos(&mk(8));
        assert_eq!(one.render_human(), eight.render_human());
        assert_eq!(one.render_json(), eight.render_json());
        assert!(one.deterministic() && eight.deterministic());
    }

    #[test]
    fn fault_free_run_is_fully_green() {
        let report = run_chaos(&ChaosOptions {
            seed: 1,
            fault_rate: 0.0,
            jobs: 1,
        });
        let text = report.render_human();
        assert!(report.deterministic());
        assert!(text.contains("measured 69/69"), "{text}");
        assert!(text.contains("0 gap(s), 100.0% coverage"), "{text}");
        assert!(text.contains("0 of 48 items panicked"), "{text}");
        assert!(text.contains("bitwise-identical: yes"), "{text}");
    }

    #[test]
    fn faults_actually_fire_at_moderate_rates() {
        let report = run_chaos(&ChaosOptions {
            seed: 2,
            fault_rate: 0.3,
            jobs: 1,
        });
        let text = report.render_human();
        assert!(!text.contains("injected: 0 transient"), "{text}");
        assert!(!text.contains("\n  0 gap(s)"), "{text}");
        assert!(!text.contains("0 of 48 items panicked"), "{text}");
    }

    #[test]
    fn trace_json_is_stable_and_covers_the_sweep() {
        let trace = trace_json();
        assert_eq!(trace, trace_json());
        assert!(trace.contains("\"traceEvents\""), "{trace}");
        assert!(trace.contains("\"60 ch\""), "{trace}");
        assert!(trace.contains("\"128 ch\""), "{trace}");
    }

    #[test]
    fn json_is_escaped_and_stable() {
        let report = run_chaos(&ChaosOptions {
            seed: 4,
            fault_rate: 0.2,
            jobs: 1,
        });
        let json = report.render_json();
        assert!(
            json.starts_with("{\n  \"version\": 1,\n  \"seed\": 4,"),
            "{json}"
        );
        assert!(json.contains("\"deterministic\": true"));
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}

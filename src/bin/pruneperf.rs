//! The `pruneperf` command-line tool. See `pruneperf help`.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match pruneperf::cli::run_cli(&args) {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(2)
        }
    }
}
